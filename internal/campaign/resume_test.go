package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
)

// stringCodec journals string results; failOn makes Decode reject a
// chosen value to exercise the re-visit fallback.
type stringCodec struct{ failOn string }

func (c stringCodec) Encode(v any) ([]byte, error) {
	return []byte(v.(string)), nil
}

func (c stringCodec) Decode(data []byte) (any, error) {
	if c.failOn != "" && string(data) == c.failOn {
		return nil, errors.New("injected decode failure")
	}
	return string(data), nil
}

// testTargets builds n int targets; visits of multiples of 9 fail.
func testTargets(n int) []int {
	targets := make([]int, n)
	for i := range targets {
		targets[i] = i
	}
	return targets
}

func testVisit(_ context.Context, x int) (string, error) {
	spin(x)
	if x%9 == 4 {
		return fmt.Sprintf("partial%d", x), fmt.Errorf("visit %d failed", x)
	}
	return fmt.Sprintf("v%d", x), nil
}

// delivered runs a campaign variant and renders its delivery sequence
// (value, error string, index) as one comparable string.
func deliveredSeq(sink *[]string) func(Result[string]) {
	return func(r Result[string]) {
		e := ""
		if r.Err != nil {
			e = r.Err.Error()
		}
		*sink = append(*sink, fmt.Sprintf("%d:%s:%s", r.Index, r.Value, e))
	}
}

// TestResumeEveryKillPoint is the subsystem's core guarantee, pinned
// exhaustively at small scale: for EVERY kill point k (cancel after k
// deliveries) and a resume under a different Workers/Shards setting,
// the concatenation replayed-then-fresh delivered to the sink is
// byte-identical to an uninterrupted run's delivery sequence.
func TestResumeEveryKillPoint(t *testing.T) {
	const n = 58
	targets := testTargets(n)

	var reference []string
	if _, err := Run(context.Background(), Config{Workers: 3, Shards: 4}, targets,
		testVisit, deliveredSeq(&reference)); err != nil {
		t.Fatal(err)
	}
	if len(reference) != n {
		t.Fatalf("reference deliveries = %d", len(reference))
	}

	for kill := 0; kill <= n; kill++ {
		dir := t.TempDir()
		cp := &Checkpoint{Dir: dir, Codec: stringCodec{}, FlushEvery: 3}

		// Phase 1: run with checkpointing, cancel after `kill` deliveries
		// (kill=0: killed before any delivery).
		ctx, cancel := context.WithCancel(context.Background())
		if kill == 0 {
			cancel()
		}
		var phase1 []string
		sink := deliveredSeq(&phase1)
		_, err := Run(ctx, Config{Workers: 3, Shards: 4, Window: 8, Checkpoint: cp}, targets,
			testVisit, func(r Result[string]) {
				sink(r)
				if len(phase1) == kill {
					cancel()
				}
			})
		cancel()
		if kill < n && err == nil {
			t.Fatalf("kill=%d: interrupted run returned nil error", kill)
		}

		// Phase 2: resume with DIFFERENT workers and shards. The full
		// delivery sequence must match the uninterrupted reference, and
		// everything journaled in phase 1 must be replayed, not re-run.
		var phase2 []string
		stats, err := Resume(context.Background(),
			Config{Workers: 5, Shards: 2, Checkpoint: cp}, targets,
			testVisit, deliveredSeq(&phase2))
		if err != nil {
			t.Fatalf("kill=%d: resume: %v", kill, err)
		}
		if got, want := strings.Join(phase2, "\n"), strings.Join(reference, "\n"); got != want {
			t.Fatalf("kill=%d: resumed delivery sequence differs from uninterrupted run\n got: %q\nwant: %q", kill, got, want)
		}
		if stats.Done != n || stats.Replayed != int64(len(phase1)) || stats.Fresh() != int64(n-len(phase1)) {
			t.Fatalf("kill=%d: stats done=%d replayed=%d fresh=%d, phase1 delivered %d",
				kill, stats.Done, stats.Replayed, stats.Fresh(), len(phase1))
		}
		// And phase 1's own deliveries agree with the reference at their
		// indices. (Under cancellation the delivered set may have holes —
		// canceled in-between targets never reach the sink — but every
		// result that IS delivered matches the uninterrupted run's.)
		for _, entry := range phase1 {
			var idx int
			if _, err := fmt.Sscanf(entry, "%d:", &idx); err != nil {
				t.Fatalf("kill=%d: unparsable delivery %q", kill, entry)
			}
			if entry != reference[idx] {
				t.Fatalf("kill=%d: phase 1 delivered %q, reference has %q", kill, entry, reference[idx])
			}
		}
	}
}

// TestResumeAfterResume: a resumed run killed again resumes cleanly —
// journals from both incarnations merge.
func TestResumeAfterResume(t *testing.T) {
	const n = 40
	targets := testTargets(n)
	var reference []string
	if _, err := Run(context.Background(), Config{Workers: 2, Shards: 3}, targets,
		testVisit, deliveredSeq(&reference)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cp := &Checkpoint{Dir: dir, Codec: stringCodec{}, FlushEvery: 1}
	kills := []int{11, 27}
	runs := 0
	for _, kill := range kills {
		ctx, cancel := context.WithCancel(context.Background())
		count := 0
		var err error
		if runs == 0 {
			_, err = Run(ctx, Config{Workers: 2, Shards: 3, Checkpoint: cp}, targets,
				testVisit, func(Result[string]) {
					if count++; count == kill {
						cancel()
					}
				})
		} else {
			_, err = Resume(ctx, Config{Workers: 4, Shards: 5, Checkpoint: cp}, targets,
				testVisit, func(Result[string]) {
					if count++; count == kill {
						cancel()
					}
				})
		}
		cancel()
		if err == nil {
			t.Fatalf("kill %d: expected cancellation error", kill)
		}
		runs++
	}
	var final []string
	stats, err := Resume(context.Background(), Config{Workers: 1, Shards: 1, Checkpoint: cp}, targets,
		testVisit, deliveredSeq(&final))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(final, "\n"), strings.Join(reference, "\n"); got != want {
		t.Fatalf("double-resume sequence differs\n got: %q\nwant: %q", got, want)
	}
	if stats.Replayed < int64(kills[1]) {
		t.Fatalf("replayed %d < %d journaled", stats.Replayed, kills[1])
	}
}

// TestResumeCompleteJournal: resuming a campaign that already finished
// replays everything and visits nothing.
func TestResumeCompleteJournal(t *testing.T) {
	const n = 30
	targets := testTargets(n)
	dir := t.TempDir()
	cp := &Checkpoint{Dir: dir, Codec: stringCodec{}}
	var first []string
	if _, err := Run(context.Background(), Config{Workers: 2, Checkpoint: cp}, targets,
		testVisit, deliveredSeq(&first)); err != nil {
		t.Fatal(err)
	}
	visits := 0
	var second []string
	stats, err := Resume(context.Background(), Config{Workers: 2, Checkpoint: cp}, targets,
		func(ctx context.Context, x int) (string, error) {
			visits++
			return testVisit(ctx, x)
		}, deliveredSeq(&second))
	if err != nil {
		t.Fatal(err)
	}
	if visits != 0 {
		t.Fatalf("%d fresh visits on a complete journal", visits)
	}
	if stats.Replayed != n || stats.Fresh() != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if strings.Join(first, "\n") != strings.Join(second, "\n") {
		t.Fatal("replayed sequence differs from original")
	}
}

// TestResumeEmptyDir: Resume over an empty/missing checkpoint dir is a
// fresh run that journals from scratch.
func TestResumeEmptyDir(t *testing.T) {
	const n = 12
	targets := testTargets(n)
	dir := filepath.Join(t.TempDir(), "never-created")
	cp := &Checkpoint{Dir: dir, Codec: stringCodec{}}
	stats, err := Resume(context.Background(), Config{Checkpoint: cp}, targets, testVisit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Done != n || stats.Replayed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The run journaled: a second resume replays all of it.
	stats, err = Resume(context.Background(), Config{Checkpoint: cp}, targets, testVisit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != n {
		t.Fatalf("second resume replayed %d, want %d", stats.Replayed, n)
	}
}

// TestResumeManifestMismatch: journals recorded for a different
// campaign (label or target identity) are refused, not replayed.
func TestResumeManifestMismatch(t *testing.T) {
	targets := testTargets(10)
	dir := t.TempDir()
	cp := &Checkpoint{Dir: dir, Codec: stringCodec{}, TargetsHash: HashTargets([]string{"a", "b"})}
	if _, err := Run(context.Background(), Config{Label: "x", Checkpoint: cp}, targets, testVisit, nil); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"label", Config{Label: "y", Checkpoint: cp}},
		{"hash", Config{Label: "x", Checkpoint: &Checkpoint{Dir: dir, Codec: stringCodec{}, TargetsHash: 1}}},
	} {
		if _, err := Resume(context.Background(), tc.cfg, targets, testVisit, nil); err == nil {
			t.Fatalf("%s mismatch: resume accepted a foreign journal", tc.name)
		}
	}
	if _, err := Resume(context.Background(), Config{Label: "x", Checkpoint: cp}, testTargets(11), testVisit, nil); err == nil {
		t.Fatal("target-count mismatch: resume accepted a foreign journal")
	}
	// And the matching config still resumes fine.
	stats, err := Resume(context.Background(), Config{Label: "x", Checkpoint: cp}, targets, testVisit, nil)
	if err != nil || stats.Replayed != 10 {
		t.Fatalf("matching resume: %v, %+v", err, stats)
	}
}

// TestResumeTornTail simulates a process kill mid-write: the journal's
// final record is truncated on disk. Resume must drop exactly that
// record, re-run its target, and still deliver the reference sequence.
func TestResumeTornTail(t *testing.T) {
	const n = 24
	targets := testTargets(n)
	var reference []string
	if _, err := Run(context.Background(), Config{Workers: 1, Shards: 1}, targets,
		testVisit, deliveredSeq(&reference)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cp := &Checkpoint{Dir: dir, Codec: stringCodec{}, FlushEvery: 1}
	if _, err := Run(context.Background(), Config{Workers: 1, Shards: 1, Checkpoint: cp}, targets,
		testVisit, nil); err != nil {
		t.Fatal(err)
	}
	path := shardFile(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: keep all bytes except the final 3.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	visited := map[int]bool{}
	var resumed []string
	stats, err := Resume(context.Background(), Config{Workers: 1, Shards: 1, Checkpoint: cp}, targets,
		func(ctx context.Context, x int) (string, error) {
			visited[x] = true
			return testVisit(ctx, x)
		}, deliveredSeq(&resumed))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(resumed, "\n"), strings.Join(reference, "\n"); got != want {
		t.Fatalf("torn-tail resume differs\n got: %q\nwant: %q", got, want)
	}
	if stats.Replayed != n-1 || !visited[n-1] || len(visited) != 1 {
		t.Fatalf("torn tail: replayed=%d visited=%v", stats.Replayed, visited)
	}
}

// TestResumeDecodeFallback: a record the codec cannot decode is
// re-visited fresh instead of failing the campaign.
func TestResumeDecodeFallback(t *testing.T) {
	const n = 15
	targets := testTargets(n)
	dir := t.TempDir()
	write := &Checkpoint{Dir: dir, Codec: stringCodec{}}
	if _, err := Run(context.Background(), Config{Checkpoint: write}, targets, testVisit, nil); err != nil {
		t.Fatal(err)
	}
	poison := &Checkpoint{Dir: dir, Codec: stringCodec{failOn: "v7"}}
	visited := map[int]bool{}
	var out []string
	stats, err := Resume(context.Background(), Config{Checkpoint: poison}, targets,
		func(ctx context.Context, x int) (string, error) {
			visited[x] = true
			return testVisit(ctx, x)
		}, deliveredSeq(&out))
	if err != nil {
		t.Fatal(err)
	}
	if !visited[7] || len(visited) != 1 || stats.Replayed != n-1 {
		t.Fatalf("decode fallback: visited=%v replayed=%d", visited, stats.Replayed)
	}
	var reference []string
	if _, err := Run(context.Background(), Config{}, targets, testVisit, deliveredSeq(&reference)); err != nil {
		t.Fatal(err)
	}
	if strings.Join(out, "\n") != strings.Join(reference, "\n") {
		t.Fatal("decode-fallback sequence differs from reference")
	}
}

// TestResumeRequiresCheckpoint pins the configuration errors.
func TestResumeRequiresCheckpoint(t *testing.T) {
	targets := testTargets(3)
	if _, err := Resume(context.Background(), Config{}, targets, testVisit, nil); err == nil {
		t.Fatal("Resume without Checkpoint succeeded")
	}
	if _, err := Resume(context.Background(), Config{Checkpoint: &Checkpoint{Dir: t.TempDir()}}, targets, testVisit, nil); err == nil {
		t.Fatal("Resume without Codec succeeded")
	}
	if _, err := Run(context.Background(), Config{Checkpoint: &Checkpoint{Dir: t.TempDir()}}, targets, testVisit, nil); err == nil {
		t.Fatal("checkpointed Run without Codec succeeded")
	}
}

// TestRunWipesStaleJournal: a FRESH checkpointed Run must not inherit
// journals left in the directory by a previous campaign.
func TestRunWipesStaleJournal(t *testing.T) {
	const n = 10
	targets := testTargets(n)
	dir := t.TempDir()
	cp := &Checkpoint{Dir: dir, Codec: stringCodec{}}
	if _, err := Run(context.Background(), Config{Checkpoint: cp}, targets, testVisit, nil); err != nil {
		t.Fatal(err)
	}
	// A fresh Run re-journals everything... (atomic: the visit func
	// runs on every worker goroutine in parallel)
	var visits atomic.Int64
	if _, err := Run(context.Background(), Config{Checkpoint: cp}, targets,
		func(ctx context.Context, x int) (string, error) {
			visits.Add(1)
			return testVisit(ctx, x)
		}, nil); err != nil {
		t.Fatal(err)
	}
	if visits.Load() != n {
		t.Fatalf("fresh run visited %d of %d", visits.Load(), n)
	}
	// ...and its journal is still complete and resumable.
	stats, err := Resume(context.Background(), Config{Checkpoint: cp}, targets, testVisit, nil)
	if err != nil || stats.Replayed != n {
		t.Fatalf("resume after re-run: %v, %+v", err, stats)
	}
}

// TestResumeMissingManifestWipesStaleJournals: journals orphaned by a
// lost manifest must never leak into a later campaign's replay. The
// missing-manifest degrade path has to wipe them BEFORE writing the
// new manifest — otherwise a second resume would find a matching
// manifest and replay the foreign (checksummed, decodable) records as
// this campaign's results.
func TestResumeMissingManifestWipesStaleJournals(t *testing.T) {
	const n = 20
	targets := testTargets(n)
	dir := t.TempDir()
	cp := &Checkpoint{Dir: dir, Codec: stringCodec{}}

	// Campaign X journals results whose values differ from testVisit's.
	foreign := func(_ context.Context, x int) (string, error) {
		return fmt.Sprintf("FOREIGN%d", x), nil
	}
	if _, err := Run(context.Background(), Config{Label: "x", Checkpoint: cp}, targets, foreign, nil); err != nil {
		t.Fatal(err)
	}
	// The manifest is lost (torn write, or an operator deleting it to
	// clear a parse error).
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	// Campaign Y resumes into the same dir twice; neither incarnation
	// may ever deliver a FOREIGN value.
	for round := 0; round < 2; round++ {
		var out []string
		stats, err := Resume(context.Background(), Config{Label: "y", Checkpoint: cp}, targets,
			testVisit, deliveredSeq(&out))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, entry := range out {
			if strings.Contains(entry, "FOREIGN") {
				t.Fatalf("round %d: replayed a foreign record: %q", round, entry)
			}
		}
		wantReplayed := int64(0)
		if round == 1 {
			wantReplayed = n // round 0 re-journaled campaign Y
		}
		if stats.Replayed != wantReplayed {
			t.Fatalf("round %d: replayed %d, want %d", round, stats.Replayed, wantReplayed)
		}
	}
}

// TestHashTargets pins order sensitivity and stability.
func TestHashTargets(t *testing.T) {
	a := HashTargets([]string{"a.de", "b.de"})
	b := HashTargets([]string{"b.de", "a.de"})
	if a == b {
		t.Fatal("order-insensitive hash")
	}
	if a != HashTargets([]string{"a.de", "b.de"}) {
		t.Fatal("unstable hash")
	}
}

// TestJournalIsPrefixOfDelivery cross-checks the on-disk record count
// against what the sink saw when a campaign is canceled: the journal
// never contains a record the sink did not observe.
func TestJournalIsPrefixOfDelivery(t *testing.T) {
	const n = 64
	targets := testTargets(n)
	for _, kill := range []int{1, 9, 31, 50} {
		dir := t.TempDir()
		cp := &Checkpoint{Dir: dir, Codec: stringCodec{}, FlushEvery: 1}
		ctx, cancel := context.WithCancel(context.Background())
		delivered := 0
		_, _ = Run(ctx, Config{Workers: 4, Shards: 2, Window: 4, Checkpoint: cp}, targets,
			testVisit, func(Result[string]) {
				if delivered++; delivered == kill {
					cancel()
				}
			})
		cancel()
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		records := 0
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".cwj") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			cnt, _ := scanJournal(data, nil)
			records += cnt
		}
		if records > delivered {
			t.Fatalf("kill=%d: journal holds %d records but sink saw %d", kill, records, delivered)
		}
	}
}
