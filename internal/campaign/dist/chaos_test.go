package dist_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/campaign/dist"
	"cookiewalk/internal/campaign/dist/distfault"
	"cookiewalk/internal/xrand"
)

// TestFleetChaosMatrix drives a full fleet through the fault injector:
// every worker request passes a chaos transport (torn uploads, dropped
// responses, stalled heartbeats, duplicated requests, torn reads) and
// the coordinator answers through a 503-burst wrapper — all
// deterministic per seed. The fleet must still converge, and the
// assembled journals must replay byte-identically to a clean local
// run. CI pins one seed per matrix job via COOKIEWALK_CHAOS_SEED;
// without the env every seed runs in-process.
func TestFleetChaosMatrix(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if env := os.Getenv("COOKIEWALK_CHAOS_SEED"); env != "" {
		var s uint64
		if _, err := fmt.Sscanf(env, "%d", &s); err != nil {
			t.Fatalf("COOKIEWALK_CHAOS_SEED=%q: %v", env, err)
		}
		seeds = []uint64{s}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) { runChaosFleet(t, seed) })
	}
}

func runChaosFleet(t *testing.T, seed uint64) {
	targets := testTargets(60)
	const shards = 4
	hash := campaign.HashTargets(targets)
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets), TargetsHash: hash, Shards: shards}
	dir := t.TempDir()

	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Dir: dir, Specs: []dist.Spec{spec},
		// Generous enough that a healthy worker's heartbeats (TTL/3,
		// with the client's own retries) survive the fault rates; small
		// enough that a lease orphaned by a dropped response re-leases
		// within the test's patience.
		TTL: 500 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	chaosHandler := &distfault.Handler{Inner: co.Handler(), Seed: seed, Burst: 25, Logf: t.Logf}
	srv := httptest.NewServer(chaosHandler)
	defer srv.Close()

	runner := func(ctx context.Context, lease dist.Lease, scratch string) (string, error) {
		cfg := campaign.Config{Label: lease.Label, Checkpoint: &campaign.Checkpoint{
			Dir: scratch, Codec: textCodec{}, TargetsHash: lease.TargetsHash,
		}}
		if _, err := campaign.RunRange(ctx, cfg, targets, lease.Shard, lease.Shards, lease.Lo, lease.Hi, visitTarget, nil); err != nil {
			return "", err
		}
		return filepath.Join(scratch, campaign.ShardFilename(lease.Shard)), nil
	}

	var transports []*distfault.Transport
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		tr := &distfault.Transport{
			Seed:    xrand.Mix64(seed, uint64(i)+100),
			Profile: distfault.DefaultProfile(),
			Logf:    t.Logf,
		}
		transports = append(transports, tr)
		client := &dist.Client{
			BaseURL:    srv.URL,
			HTTPClient: &http.Client{Transport: tr},
			Backoff:    5 * time.Millisecond,
			Seed:       xrand.Mix64(seed, uint64(i)),
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &dist.Worker{
				Client: client, Name: fmt.Sprintf("chaos-%d", i),
				Runner: runner, Poll: 10 * time.Millisecond, Logf: t.Logf,
			}
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			saveChaosArtifacts(t, seed, dir)
			t.Fatalf("chaos worker %d died: %v", i, err)
		}
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := co.Wait(waitCtx); err != nil {
		saveChaosArtifacts(t, seed, dir)
		t.Fatalf("chaos fleet never converged: %v", err)
	}
	injected := uint64(chaosHandler.Injected())
	for _, tr := range transports {
		injected += tr.Injected()
	}
	t.Logf("chaos fleet converged through %d injected faults (status %+v)", injected, co.Status())
	if injected == 0 {
		t.Fatal("no faults injected — the chaos matrix tested nothing")
	}

	// The assembly must be indistinguishable from a clean local run.
	var want, got []string
	sink := func(out *[]string) func(campaign.Result[string]) {
		return func(r campaign.Result[string]) { *out = append(*out, fmt.Sprintf("%d:%s", r.Index, r.Value)) }
	}
	if _, err := campaign.Run(context.Background(), campaign.Config{Label: "camp alpha", Shards: shards},
		targets, visitTarget, sink(&want)); err != nil {
		t.Fatal(err)
	}
	rcfg := campaign.Config{Label: "camp alpha", Checkpoint: &campaign.Checkpoint{
		Dir: filepath.Join(dir, campaign.PathLabel("camp alpha")), Codec: textCodec{}, TargetsHash: hash,
	}}
	stats, err := campaign.Resume(context.Background(), rcfg, targets,
		func(_ context.Context, d string) (string, error) {
			t.Errorf("assembled resume re-visited %s", d)
			return "", nil
		}, sink(&got))
	if err != nil {
		saveChaosArtifacts(t, seed, dir)
		t.Fatal(err)
	}
	if stats.Replayed != int64(len(targets)) {
		saveChaosArtifacts(t, seed, dir)
		t.Fatalf("replayed %d of %d", stats.Replayed, len(targets))
	}
	for i := range got {
		if got[i] != want[i] {
			saveChaosArtifacts(t, seed, dir)
			t.Fatalf("delivery %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// saveChaosArtifacts copies the assembly dir — merged journals plus
// the lease ledger — to COOKIEWALK_CHAOS_ARTIFACTS for CI upload on
// failure.
func saveChaosArtifacts(t *testing.T, seed uint64, dir string) {
	t.Helper()
	root := os.Getenv("COOKIEWALK_CHAOS_ARTIFACTS")
	if root == "" {
		return
	}
	dst := filepath.Join(root, fmt.Sprintf("chaos-seed-%d", seed))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	if err := os.CopyFS(filepath.Join(dst, "assembly"), os.DirFS(dir)); err != nil {
		t.Logf("artifacts: copy assembly: %v", err)
	}
	t.Logf("chaos failure artifacts saved to %s", dst)
}
