// Package distfault injects the failures production fleets actually
// see — dropped responses, torn reads, 5xx bursts, torn journal
// uploads, stalled heartbeats, duplicated requests — into the dist
// protocol, deterministically from a seed. It wraps both ends:
// Transport sits in a worker's HTTP client, Handler in front of the
// coordinator. Every injection decision is a pure function of
// (seed, request counter), so a failing chaos run replays exactly from
// its seed.
//
// The harness is deliberately adversarial but physical: it only does
// to requests what networks and crashes do — truncate, delay, drop,
// repeat, refuse — never forging protocol messages. The invariants it
// probes are the fleet's real ones: a torn PUT must surface as a
// validation reject and be re-shipped fresh; a dropped lease response
// must expire into a re-lease; a duplicated upload must hit the lease
// fence, never a double merge.
package distfault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cookiewalk/internal/xrand"
)

// Fault kinds, in threshold order.
const (
	faultNone      = "none"
	faultTornPut   = "torn-put"   // journal PUT body truncated in flight
	faultStallHB   = "stall-hb"   // heartbeat never delivered
	faultDrop      = "drop"       // server handled it, response lost
	faultShortRead = "short-read" // response body torn mid-read
	fault503       = "503"        // synthesized 503, server never reached
	faultDup       = "dup"        // request delivered twice
)

// Profile sets per-mille injection rates (out of 1000 requests), at
// most one fault per request. A rate whose fault does not apply to a
// given request (TornPut outside journal PUTs, StallHB outside
// heartbeats) passes the request through clean — the roll is still
// consumed, keeping the decision sequence deterministic regardless of
// request mix.
type Profile struct {
	TornPut   int // PUT /v1/journal only
	StallHB   int // POST /v1/heartbeat only
	Drop      int
	ShortRead int
	Err503    int
	Dup       int
}

// DefaultProfile is a noisy-but-survivable mix: roughly one request in
// four suffers a fault.
func DefaultProfile() Profile {
	return Profile{TornPut: 60, StallHB: 50, Drop: 40, ShortRead: 40, Err503: 40, Dup: 30}
}

// Transport is a fault-injecting http.RoundTripper for worker clients.
// Safe for concurrent use.
type Transport struct {
	// Base performs the real requests (default http.DefaultTransport).
	Base http.RoundTripper
	// Seed drives every injection decision.
	Seed uint64
	// Profile sets the fault mix (zero value injects nothing; use
	// DefaultProfile for the standard chaos mix).
	Profile Profile
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)

	n        atomic.Uint64
	injected atomic.Uint64
}

// Injected reports how many faults this transport has injected.
func (t *Transport) Injected() uint64 { return t.injected.Load() }

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// pick maps one hash roll to a fault kind via cumulative per-mille
// thresholds.
func (p Profile) pick(roll uint64) string {
	cum := uint64(0)
	for _, f := range []struct {
		kind string
		rate int
	}{
		{faultTornPut, p.TornPut}, {faultStallHB, p.StallHB}, {faultDrop, p.Drop},
		{faultShortRead, p.ShortRead}, {fault503, p.Err503}, {faultDup, p.Dup},
	} {
		cum += uint64(f.rate)
		if roll < cum {
			return f.kind
		}
	}
	return faultNone
}

// errInjected marks transport-level injected failures; they look like
// any network error to the client (and are classified transient).
var errInjected = errors.New("distfault: injected network failure")

// RoundTrip buffers the request body, rolls one fault decision from
// (Seed, request number) and applies it. Fault kinds that do not fit
// the request pass it through untouched.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	send := func(b []byte) (*http.Response, error) {
		r := req.Clone(req.Context())
		r.Body = io.NopCloser(bytes.NewReader(b))
		r.ContentLength = int64(len(b))
		return t.base().RoundTrip(r)
	}

	n := t.n.Add(1)
	h := xrand.Mix64(t.Seed, n)
	fault := t.Profile.pick(h % 1000)
	isJournalPut := req.Method == http.MethodPut && strings.HasPrefix(req.URL.Path, "/v1/journal")
	isHeartbeat := strings.HasSuffix(req.URL.Path, "/v1/heartbeat")

	switch {
	case fault == faultTornPut && isJournalPut && len(body) > 0:
		cut := int(xrand.Mix64(h, 1) % uint64(len(body)))
		t.inject(fault, req, "cut %d of %d bytes", cut, len(body))
		return send(body[:cut])

	case fault == faultStallHB && isHeartbeat:
		t.inject(fault, req, "heartbeat swallowed")
		// A stalled heartbeat is one that never lands: burn a little
		// real time (so TTLs can lapse) and fail without sending.
		time.Sleep(2 * time.Millisecond)
		return nil, fmt.Errorf("%s %s: %w (stalled heartbeat)", req.Method, req.URL.Path, errInjected)

	case fault == faultDrop:
		t.inject(fault, req, "response dropped after delivery")
		resp, err := send(body)
		if err == nil {
			// The server fully handled the request; the worker never
			// hears about it.
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, fmt.Errorf("%s %s: %w (response dropped)", req.Method, req.URL.Path, errInjected)

	case fault == faultShortRead:
		resp, err := send(body)
		if err != nil {
			return resp, err
		}
		t.inject(fault, req, "response body torn")
		resp.Body = &tornBody{rc: resp.Body, remaining: 3}
		return resp, nil

	case fault == fault503:
		t.inject(fault, req, "synthesized 503")
		return &http.Response{
			Status: "503 Service Unavailable", StatusCode: http.StatusServiceUnavailable,
			Proto: "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Body: io.NopCloser(strings.NewReader("distfault: injected 503")), Request: req,
		}, nil

	case fault == faultDup:
		t.inject(fault, req, "request duplicated")
		if first, err := send(body); err == nil {
			io.Copy(io.Discard, first.Body)
			first.Body.Close()
		}
		return send(body)
	}
	return send(body)
}

func (t *Transport) inject(kind string, req *http.Request, format string, args ...any) {
	t.injected.Add(1)
	if t.Logf != nil {
		t.Logf("distfault: %s %s %s: %s", kind, req.Method, req.URL.Path, fmt.Sprintf(format, args...))
	}
}

// tornBody yields a few bytes then fails mid-read, like a connection
// cut while the response was streaming.
type tornBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *tornBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("%w (torn response body)", errInjected)
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err != nil {
		return n, err
	}
	return n, nil
}

func (b *tornBody) Close() error { return b.rc.Close() }

// Handler wraps the coordinator's handler with seeded 5xx bursts: with
// per-mille probability Burst a request opens a burst of 1–3
// consecutive 503s (the burst length is also seed-derived), modeling a
// coordinator briefly overwhelmed or mid-restart behind a proxy.
type Handler struct {
	Inner http.Handler
	Seed  uint64
	// Burst is the per-mille chance a request starts a 503 burst
	// (0 disables injection).
	Burst int
	// Logf, when non-nil, receives one line per injected burst.
	Logf func(format string, args ...any)

	mu        sync.Mutex
	n         uint64
	burstLeft int
	injected  uint64
}

// Injected reports how many requests this handler has refused with an
// injected 503.
func (h *Handler) Injected() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.injected
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.n++
	inject := false
	if h.burstLeft > 0 {
		h.burstLeft--
		inject = true
	} else if h.Burst > 0 {
		roll := xrand.Mix64(h.Seed+1, h.n)
		if roll%1000 < uint64(h.Burst) {
			h.burstLeft = int(roll>>32%3) + 1
			if h.Logf != nil {
				h.Logf("distfault: 503 burst of %d starting at request %d", h.burstLeft+1, h.n)
			}
			inject = true
		}
	}
	if inject {
		h.injected++
	}
	h.mu.Unlock()
	if inject {
		http.Error(w, "distfault: injected 503 burst", http.StatusServiceUnavailable)
		return
	}
	h.Inner.ServeHTTP(w, r)
}
