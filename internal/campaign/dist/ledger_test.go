package dist

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLedgerRoundTripAndTornTail: events appended to a ledger survive
// a reopen; bytes torn off the tail (the crash-mid-write case) cost
// exactly the torn line, and the reopened ledger truncates the tail so
// later appends extend a consistent prefix.
func TestLedgerRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), ledgerName)
	led, events, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("fresh ledger replayed %d events", len(events))
	}
	evs := []ledgerEvent{
		{Ev: evStart, Inc: 1, Fleet: 0xfeed},
		{Ev: evGrant, Seq: 1, Lease: "L01-000001", Worker: "w0", Label: "camp", Shard: 0, Lo: 0, Hi: 10},
		{Ev: evMerge, Lease: "L01-000001", Label: "camp", Shard: 0, Lo: 0, Hi: 10},
	}
	for _, ev := range evs {
		if err := led.append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := led.close(); err != nil {
		t.Fatal(err)
	}

	_, replayed, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(evs) {
		t.Fatalf("replayed %d events, want %d", len(replayed), len(evs))
	}
	for i, ev := range replayed {
		if ev != evs[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, ev, evs[i])
		}
	}

	// Tear bytes off the tail: the merge line is damaged, start+grant
	// survive, and the reopened ledger accepts fresh appends.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	led3, replayed, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 || replayed[1].Ev != evGrant {
		t.Fatalf("after torn tail: %d events (%+v)", len(replayed), replayed)
	}
	if err := led3.append(ledgerEvent{Ev: evExpire, Lease: "L01-000001"}); err != nil {
		t.Fatal(err)
	}
	led3.close()
	_, replayed, err = openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 3 || replayed[2].Ev != evExpire {
		t.Fatalf("after truncate+append: %d events (%+v)", len(replayed), replayed)
	}
}

// TestLedgerCorruptLineStopsScan: flipping one payload byte breaks the
// line checksum and parsing stops there — everything after a corrupt
// line is untrusted, exactly like the visit journals.
func TestLedgerCorruptLineStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), ledgerName)
	led, _, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	led.append(ledgerEvent{Ev: evStart, Inc: 1, Fleet: 1})
	led.append(ledgerEvent{Ev: evGrant, Seq: 1, Lease: "L01-000001"})
	led.append(ledgerEvent{Ev: evGrant, Seq: 2, Lease: "L01-000002"})
	led.close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside the SECOND event's payload (past the magic
	// and the first full line).
	lines := 0
	for i, b := range data {
		if b == '\n' {
			lines++
			if lines == 2 { // magic is line 1
				data[i+20] ^= 0x01
				break
			}
		}
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, events, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Ev != evStart {
		t.Fatalf("after corruption: %d events (%+v)", len(events), events)
	}
}

// TestLedgerMissingMagicDiscardsAll: a file whose magic is torn is
// treated as empty and rewritten — never partially trusted.
func TestLedgerMissingMagicDiscardsAll(t *testing.T) {
	path := filepath.Join(t.TempDir(), ledgerName)
	if err := os.WriteFile(path, []byte("cwl"), 0o644); err != nil {
		t.Fatal(err)
	}
	led, events, err := openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("torn-magic ledger replayed %d events", len(events))
	}
	if err := led.append(ledgerEvent{Ev: evStart, Inc: 1, Fleet: 2}); err != nil {
		t.Fatal(err)
	}
	led.close()
	_, events, err = openLedger(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("rewritten ledger replayed %d events", len(events))
	}
}

// TestFleetHashDistinguishesSpecs: any identity component — label,
// size, hash, shard count, order — changes the fleet hash, so a ledger
// can never be replayed by a differently-configured coordinator.
func TestFleetHashDistinguishesSpecs(t *testing.T) {
	base := []Spec{{Label: "a", Targets: 10, TargetsHash: 7, Shards: 2}, {Label: "b", Targets: 20, TargetsHash: 9, Shards: 4}}
	variants := [][]Spec{
		{{Label: "a!", Targets: 10, TargetsHash: 7, Shards: 2}, base[1]},
		{{Label: "a", Targets: 11, TargetsHash: 7, Shards: 2}, base[1]},
		{{Label: "a", Targets: 10, TargetsHash: 8, Shards: 2}, base[1]},
		{{Label: "a", Targets: 10, TargetsHash: 7, Shards: 3}, base[1]},
		{base[1], base[0]},
		{base[0]},
	}
	want := fleetHash(base)
	if want != fleetHash(base) {
		t.Fatal("fleetHash not deterministic")
	}
	for i, v := range variants {
		if fleetHash(v) == want {
			t.Fatalf("variant %d collides with base", i)
		}
	}
}

// TestJitterBoundsAndDeterminism pins the jitter contract the fleet
// depends on: every delay lands in [base/2, base], the schedule is a
// pure function of (seed, call, attempt), and different seeds (i.e.
// different workers) decorrelate.
func TestJitterBoundsAndDeterminism(t *testing.T) {
	base := 100 * time.Millisecond
	same := 0
	for attempt := 0; attempt < 8; attempt++ {
		d1 := jitter(1, 1, attempt, base)
		d2 := jitter(2, 1, attempt, base)
		if d1 < base/2 || d1 > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, base/2, base)
		}
		if d1 != jitter(1, 1, attempt, base) {
			t.Fatalf("attempt %d: jitter not deterministic", attempt)
		}
		if d1 == d2 {
			same++
		}
	}
	if same == 8 {
		t.Fatal("two seeds produced identical 8-delay schedules — no decorrelation")
	}
}
