package dist_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/campaign/dist"
)

// mustCoordinator builds a coordinator over dir for the given specs
// (no test server — callers wire their own).
func mustCoordinator(t *testing.T, dir string, specs ...dist.Spec) *dist.Coordinator {
	t.Helper()
	co, err := dist.NewCoordinator(dist.CoordinatorConfig{Dir: dir, Specs: specs, TTL: time.Minute, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// quickClient is a test client that never really sleeps.
func quickClient(url string) *dist.Client {
	return &dist.Client{BaseURL: url, MaxRetries: 1, Backoff: time.Millisecond, Sleep: func(time.Duration) {}}
}

// TestCoordinatorCrashRecovery is the ledger tentpole at protocol
// level: merge one range, "kill" the coordinator (abandon it without
// Close — the ledger was fsynced per event), restart on the same dir,
// and verify the recovered state — merged range still done, leased
// range back in the queue, fresh incarnation counted — then drain the
// rest and check the assembly replays byte-identically.
func TestCoordinatorCrashRecovery(t *testing.T) {
	targets := testTargets(60)
	const shards = 4
	hash := campaign.HashTargets(targets)
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets), TargetsHash: hash, Shards: shards}
	dir := t.TempDir()
	ctx := context.Background()

	co1 := mustCoordinator(t, dir, spec)
	srv1 := httptest.NewServer(co1.Handler())
	client := quickClient(srv1.URL)

	// Shard 0 merges; shard 1 is granted but never shipped.
	reply, err := client.Lease(ctx, "w-merge")
	if err != nil || reply.Lease == nil {
		t.Fatalf("lease: %+v, %v", reply, err)
	}
	if err := client.ShipJournal(ctx, reply.Lease.ID, rangeJournal(t, "camp alpha", targets, 0, shards)); err != nil {
		t.Fatal(err)
	}
	reply, err = client.Lease(ctx, "w-doomed")
	if err != nil || reply.Lease == nil {
		t.Fatalf("lease: %+v, %v", reply, err)
	}
	orphaned := reply.Lease.ID
	srv1.Close() // SIGKILL-equivalent: no Close, no ledger shutdown

	co2 := mustCoordinator(t, dir, spec)
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	client.BaseURL = srv2.URL

	st := co2.Status()
	if st.Incarnation != 2 || st.Recovered != 1 || st.Done != 1 || st.Pending != shards-1 || st.Leased != 0 {
		t.Fatalf("recovered status = %+v", st)
	}
	// The dead incarnation's lease is fenced, not resurrected.
	if err := client.Heartbeat(ctx, orphaned); !errors.Is(err, dist.ErrLeaseLost) {
		t.Fatalf("orphaned heartbeat: %v", err)
	}

	// Drain the remaining ranges; shard 0 must NOT be re-leased.
	for {
		reply, err := client.Lease(ctx, "w-drain")
		if err != nil {
			t.Fatal(err)
		}
		if reply.Done {
			break
		}
		if reply.Lease == nil {
			t.Fatalf("unexpected wait with a single worker: %+v", reply)
		}
		if reply.Lease.Shard == 0 {
			t.Fatalf("recovered coordinator re-leased merged shard 0 (%+v)", reply.Lease)
		}
		if err := client.ShipJournal(ctx, reply.Lease.ID,
			rangeJournal(t, "camp alpha", targets, reply.Lease.Shard, shards)); err != nil {
			t.Fatal(err)
		}
	}
	waitCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := co2.Wait(waitCtx); err != nil {
		t.Fatalf("recovered fleet never finished: %v", err)
	}

	// The assembled directory replays like any single-machine run.
	rcfg := campaign.Config{Label: "camp alpha", Checkpoint: &campaign.Checkpoint{
		Dir: filepath.Join(dir, campaign.PathLabel("camp alpha")), Codec: textCodec{}, TargetsHash: hash,
	}}
	var got []string
	stats, err := campaign.Resume(ctx, rcfg, targets,
		func(_ context.Context, d string) (string, error) {
			t.Errorf("assembled resume re-visited %s", d)
			return "", nil
		},
		func(r campaign.Result[string]) { got = append(got, fmt.Sprintf("%d:%s", r.Index, r.Value)) })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != int64(len(targets)) || len(got) != len(targets) {
		t.Fatalf("replayed %d, delivered %d of %d", stats.Replayed, len(got), len(targets))
	}
}

// TestRecoveryRequeuesCorruptAssemblyFile: a merge event whose
// assembly file no longer verifies (bit rot, torn disk) re-queues the
// range instead of trusting the ledger — the ledger is advisory, the
// journal bytes are authoritative.
func TestRecoveryRequeuesCorruptAssemblyFile(t *testing.T) {
	targets := testTargets(40)
	const shards = 2
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets),
		TargetsHash: campaign.HashTargets(targets), Shards: shards}
	dir := t.TempDir()
	ctx := context.Background()

	co1 := mustCoordinator(t, dir, spec)
	srv1 := httptest.NewServer(co1.Handler())
	client := quickClient(srv1.URL)
	reply, err := client.Lease(ctx, "w")
	if err != nil || reply.Lease == nil {
		t.Fatalf("lease: %+v, %v", reply, err)
	}
	if err := client.ShipJournal(ctx, reply.Lease.ID, rangeJournal(t, "camp alpha", targets, 0, shards)); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	merged := filepath.Join(dir, campaign.PathLabel("camp alpha"), campaign.ShardFilename(0))
	data, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(merged, data, 0o644); err != nil {
		t.Fatal(err)
	}

	co2 := mustCoordinator(t, dir, spec)
	st := co2.Status()
	if st.Recovered != 0 || st.Pending != shards {
		t.Fatalf("recovered status with corrupt file = %+v", st)
	}
	if _, err := os.Stat(merged); !os.IsNotExist(err) {
		t.Fatalf("corrupt assembly file survived recovery: %v", err)
	}
}

// TestRecoveryProbesFileWithoutMergeEvent covers the crash window
// between the journal rename and the ledger append: the merge event is
// missing but the file is present and valid, so recovery trusts the
// verified bytes and keeps the range done.
func TestRecoveryProbesFileWithoutMergeEvent(t *testing.T) {
	targets := testTargets(40)
	const shards = 2
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets),
		TargetsHash: campaign.HashTargets(targets), Shards: shards}
	dir := t.TempDir()
	ctx := context.Background()

	co1 := mustCoordinator(t, dir, spec)
	srv1 := httptest.NewServer(co1.Handler())
	client := quickClient(srv1.URL)
	reply, err := client.Lease(ctx, "w")
	if err != nil || reply.Lease == nil {
		t.Fatalf("lease: %+v, %v", reply, err)
	}
	if err := client.ShipJournal(ctx, reply.Lease.ID, rangeJournal(t, "camp alpha", targets, 0, shards)); err != nil {
		t.Fatal(err)
	}
	srv1.Close()

	// Drop the ledger's last line (the merge event), simulating a crash
	// after the rename but before the append reached the disk.
	ledgerPath := filepath.Join(dir, "ledger.cwl")
	data, err := os.ReadFile(ledgerPath)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(data, "\n")
	cut := bytes.LastIndexByte(trimmed, '\n')
	if cut < 0 {
		t.Fatal("ledger has no event lines")
	}
	if err := os.WriteFile(ledgerPath, data[:cut+1], 0o644); err != nil {
		t.Fatal(err)
	}

	co2 := mustCoordinator(t, dir, spec)
	st := co2.Status()
	if st.Recovered != 1 || st.Pending != shards-1 {
		t.Fatalf("recovered status without merge event = %+v", st)
	}
}

// TestRecoveryRefusesForeignFleet: a ledger recorded for different
// campaigns (another universe, another shard partitioning) must be
// refused outright, never "recovered" into the wrong fleet.
func TestRecoveryRefusesForeignFleet(t *testing.T) {
	targets := testTargets(40)
	dir := t.TempDir()
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets),
		TargetsHash: campaign.HashTargets(targets), Shards: 2}
	mustCoordinator(t, dir, spec)

	foreign := spec
	foreign.TargetsHash++
	if _, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Dir: dir, Specs: []dist.Spec{foreign}, TTL: time.Minute,
	}); err == nil {
		t.Fatal("coordinator adopted a foreign fleet's ledger")
	}
}

// TestRecoveryAllDone: restarting over a fully merged assembly
// completes immediately — Wait returns, workers hear "done".
func TestRecoveryAllDone(t *testing.T) {
	targets := testTargets(40)
	const shards = 2
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets),
		TargetsHash: campaign.HashTargets(targets), Shards: shards}
	dir := t.TempDir()
	ctx := context.Background()

	co1 := mustCoordinator(t, dir, spec)
	srv1 := httptest.NewServer(co1.Handler())
	client := quickClient(srv1.URL)
	for s := 0; s < shards; s++ {
		reply, err := client.Lease(ctx, "w")
		if err != nil || reply.Lease == nil {
			t.Fatalf("lease %d: %+v, %v", s, reply, err)
		}
		if err := client.ShipJournal(ctx, reply.Lease.ID,
			rangeJournal(t, "camp alpha", targets, reply.Lease.Shard, shards)); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Close()

	co2 := mustCoordinator(t, dir, spec)
	waitCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := co2.Wait(waitCtx); err != nil {
		t.Fatalf("fully merged fleet did not report done after restart: %v", err)
	}
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	client.BaseURL = srv2.URL
	reply, err := client.Lease(ctx, "w-late")
	if err != nil || !reply.Done {
		t.Fatalf("late worker should hear done: %+v, %v", reply, err)
	}
}

// TestClosedCoordinatorAnswers503: after a graceful Close,
// state-changing requests are refused with 503 — the transient class,
// so workers keep polling for the restart instead of dying.
func TestClosedCoordinatorAnswers503(t *testing.T) {
	targets := testTargets(20)
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets),
		TargetsHash: campaign.HashTargets(targets), Shards: 2}
	dir := t.TempDir()
	co := mustCoordinator(t, dir, spec)
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if err := co.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	client := quickClient(srv.URL)
	_, err := client.Lease(context.Background(), "w")
	if err == nil || !dist.IsTransient(err) {
		t.Fatalf("lease against closed coordinator: %v (want transient)", err)
	}
	if err := client.Heartbeat(context.Background(), "L01-000001"); !dist.IsTransient(err) {
		t.Fatalf("heartbeat against closed coordinator: %v (want transient)", err)
	}
	// Read-only endpoints stay up so operators can still inspect state.
	if _, err := client.Campaigns(context.Background()); err != nil {
		t.Fatalf("campaigns against closed coordinator: %v", err)
	}
}

// TestCoordinatorTokenAuth: with a fleet token configured, tokenless
// and wrong-tokened requests get a definitive 401 (no retry), and the
// right token passes.
func TestCoordinatorTokenAuth(t *testing.T) {
	targets := testTargets(20)
	dir := t.TempDir()
	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Dir: dir,
		Specs: []dist.Spec{{Label: "camp alpha", Targets: len(targets),
			TargetsHash: campaign.HashTargets(targets), Shards: 2}},
		TTL:   time.Minute,
		Token: "s3cret",
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		name, token string
	}{{"no token", ""}, {"wrong token", "s3cret-but-wrong"}} {
		t.Run(tc.name, func(t *testing.T) {
			c := quickClient(srv.URL)
			c.Token = tc.token
			_, err := c.Lease(context.Background(), "w")
			if !errors.Is(err, dist.ErrUnauthorized) {
				t.Fatalf("err = %v, want ErrUnauthorized", err)
			}
			if dist.IsTransient(err) {
				t.Fatal("401 classified transient — workers would retry forever")
			}
		})
	}

	ok := quickClient(srv.URL)
	ok.Token = "s3cret"
	reply, err := ok.Lease(context.Background(), "w")
	if err != nil || reply.Lease == nil {
		t.Fatalf("authorized lease: %+v, %v", reply, err)
	}
	// Raw HTTP double-check: the refusal really is a 401.
	resp, err := http.Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless status = %d, want 401", resp.StatusCode)
	}
}

// TestWorkerShipRetryAfterTornUpload: a PUT whose body arrives
// truncated is rejected by validation; the worker must re-ship a
// complete fresh copy under the same (still-heartbeaten) lease and
// succeed.
func TestWorkerShipRetryAfterTornUpload(t *testing.T) {
	targets := testTargets(40)
	const shards = 2
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets),
		TargetsHash: campaign.HashTargets(targets), Shards: shards}
	dir := t.TempDir()
	co := mustCoordinator(t, dir, spec)
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	// Tear the body of the first journal PUT only.
	torn := false
	client := &dist.Client{BaseURL: srv.URL, MaxRetries: 1, Backoff: time.Millisecond,
		Sleep:      func(time.Duration) {},
		HTTPClient: &http.Client{Transport: tearFirstPut{inner: http.DefaultTransport, torn: &torn}}}

	runner := func(ctx context.Context, lease dist.Lease, scratch string) (string, error) {
		cfg := campaign.Config{Label: lease.Label, Checkpoint: &campaign.Checkpoint{
			Dir: scratch, Codec: textCodec{}, TargetsHash: lease.TargetsHash,
		}}
		if _, err := campaign.RunRange(ctx, cfg, targets, lease.Shard, lease.Shards, lease.Lo, lease.Hi, visitTarget, nil); err != nil {
			return "", err
		}
		return filepath.Join(scratch, campaign.ShardFilename(lease.Shard)), nil
	}
	w := &dist.Worker{Client: client, Name: "w-torn", Runner: runner,
		Poll: 5 * time.Millisecond, Logf: t.Logf}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker died on a torn upload: %v", err)
	}
	if !torn {
		t.Fatal("the tearing transport never fired — test proves nothing")
	}
	if st := co.Status(); st.Done != shards {
		t.Fatalf("status = %+v, want all %d merged", st, shards)
	}
}

// tearFirstPut truncates the body of the first journal PUT it sees.
type tearFirstPut struct {
	inner http.RoundTripper
	torn  *bool
}

func (tr tearFirstPut) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodPut && !*tr.torn && req.Body != nil {
		*tr.torn = true
		data, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		cut := len(data) / 3
		clone := req.Clone(req.Context())
		clone.Body = io.NopCloser(bytes.NewReader(data[:cut]))
		clone.ContentLength = int64(cut)
		return tr.inner.RoundTrip(clone)
	}
	return tr.inner.RoundTrip(req)
}

// TestWorkerAbandonsLeaseWhenShipExhausted: when every fresh upload of
// a finished journal dies on transport (the coordinator crashed after
// granting the lease), the worker must NOT die with it — it abandons
// the range, the lease expires after its TTL, and the worker picks the
// range back up once the endpoint answers again.
func TestWorkerAbandonsLeaseWhenShipExhausted(t *testing.T) {
	targets := testTargets(20)
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets),
		TargetsHash: campaign.HashTargets(targets), Shards: 1}
	dir := t.TempDir()
	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Dir: dir, Specs: []dist.Spec{spec}, TTL: 100 * time.Millisecond, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	// MaxRetries 1 + ShipRetries 1 = 4 transport PUTs per lease; fail
	// exactly that many, so the first lease exhausts every fresh upload
	// and the retry after re-lease succeeds.
	var left, seen atomic.Int64
	left.Store(4)
	client := &dist.Client{BaseURL: srv.URL, MaxRetries: 1, Backoff: time.Millisecond,
		Sleep:      func(time.Duration) {},
		HTTPClient: &http.Client{Transport: failPuts{inner: http.DefaultTransport, left: &left, seen: &seen}}}
	runner := func(ctx context.Context, lease dist.Lease, scratch string) (string, error) {
		cfg := campaign.Config{Label: lease.Label, Checkpoint: &campaign.Checkpoint{
			Dir: scratch, Codec: textCodec{}, TargetsHash: lease.TargetsHash,
		}}
		if _, err := campaign.RunRange(ctx, cfg, targets, lease.Shard, lease.Shards, lease.Lo, lease.Hi, visitTarget, nil); err != nil {
			return "", err
		}
		return filepath.Join(scratch, campaign.ShardFilename(lease.Shard)), nil
	}
	w := &dist.Worker{Client: client, Name: "w-abandon", Runner: runner,
		ShipRetries: 1, Poll: 5 * time.Millisecond, Logf: t.Logf}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker died instead of abandoning the lease: %v", err)
	}
	if got := seen.Load(); got < 5 {
		t.Fatalf("transport saw %d journal PUTs, want >= 5 (4 injected failures + a successful re-ship)", got)
	}
	if st := co.Status(); st.Done != 1 || st.Pending != 0 {
		t.Fatalf("status = %+v, want the range merged after re-lease", st)
	}
}

// failPuts fails the first `left` journal PUTs with a transport error —
// what shipping into a crashed coordinator looks like from the client.
type failPuts struct {
	inner      http.RoundTripper
	left, seen *atomic.Int64
}

func (tr failPuts) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method == http.MethodPut {
		tr.seen.Add(1)
		if tr.left.Add(-1) >= 0 {
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, fmt.Errorf("injected: connection refused")
		}
	}
	return tr.inner.RoundTrip(req)
}
