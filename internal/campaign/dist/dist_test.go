package dist_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/campaign/dist"
)

type textCodec struct{}

func (textCodec) Encode(v any) ([]byte, error)    { return []byte(v.(string)), nil }
func (textCodec) Decode(data []byte) (any, error) { return string(data), nil }

// fakeClock is a hand-advanced clock for deterministic lease-expiry
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testTargets(n int) []string {
	targets := make([]string, n)
	for i := range targets {
		targets[i] = fmt.Sprintf("site-%03d.example", i)
	}
	return targets
}

func visitTarget(_ context.Context, d string) (string, error) { return "visited:" + d, nil }

// rangeJournal produces a valid shard journal for one range of the
// campaign, the way a worker's RunRange would.
func rangeJournal(t *testing.T, label string, targets []string, shard, shards int) []byte {
	t.Helper()
	lo, hi := campaign.ShardRange(len(targets), shards, shard)
	dir := t.TempDir()
	cfg := campaign.Config{Label: label, Checkpoint: &campaign.Checkpoint{
		Dir: dir, Codec: textCodec{}, TargetsHash: campaign.HashTargets(targets),
	}}
	if _, err := campaign.RunRange(context.Background(), cfg, targets, shard, shards, lo, hi, visitTarget, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, campaign.ShardFilename(shard)))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// newTestCoordinator spins up a coordinator over one small campaign
// and an httptest server for it.
func newTestCoordinator(t *testing.T, targets []string, shards int, ttl time.Duration, now func() time.Time) (*dist.Coordinator, *dist.Client, string) {
	t.Helper()
	dir := t.TempDir()
	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Dir: dir,
		Specs: []dist.Spec{{
			Label: "camp alpha", Targets: len(targets),
			TargetsHash: campaign.HashTargets(targets), Shards: shards,
		}},
		TTL: ttl,
		Now: now,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	t.Cleanup(srv.Close)
	client := &dist.Client{BaseURL: srv.URL, MaxRetries: 1, Backoff: time.Millisecond}
	return co, client, dir
}

// TestLeaseExpiryAndFencing drives the lost-worker path with a fake
// clock: a lease that misses its TTL is revoked and its range
// re-leased, and the stale lease is fenced off from both heartbeats
// and journal uploads — even with perfectly valid journal bytes.
func TestLeaseExpiryAndFencing(t *testing.T) {
	targets := testTargets(20)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	co, client, dir := newTestCoordinator(t, targets, 2, time.Minute, clock.now)
	ctx := context.Background()

	reply, err := client.Lease(ctx, "w1")
	if err != nil || reply.Lease == nil {
		t.Fatalf("lease: %+v, %v", reply, err)
	}
	lease1 := *reply.Lease
	if lease1.Shard != 0 || lease1.Lo != 0 || lease1.Hi != 10 {
		t.Fatalf("first lease = %+v", lease1)
	}

	// Heartbeats inside the TTL keep the lease alive across several
	// TTL-multiples of wall time.
	for i := 0; i < 4; i++ {
		clock.advance(40 * time.Second)
		if err := client.Heartbeat(ctx, lease1.ID); err != nil {
			t.Fatalf("heartbeat %d: %v", i, err)
		}
	}

	// Silence past the TTL: the lease dies, the range is re-leased.
	clock.advance(2 * time.Minute)
	if err := client.Heartbeat(ctx, lease1.ID); !errors.Is(err, dist.ErrLeaseLost) {
		t.Fatalf("stale heartbeat: %v", err)
	}
	if st := co.Status(); st.Expired != 1 || st.Pending != 2 {
		t.Fatalf("status after expiry = %+v", st)
	}
	reply, err = client.Lease(ctx, "w2")
	if err != nil || reply.Lease == nil {
		t.Fatalf("re-lease: %+v, %v", reply, err)
	}
	lease2 := *reply.Lease
	if lease2.Shard != 0 || lease2.ID == lease1.ID {
		t.Fatalf("re-lease = %+v (old ID %s)", lease2, lease1.ID)
	}

	// The zombie ships a perfectly valid journal under the revoked
	// lease: refused, and nothing lands in the assembly dir.
	journal := rangeJournal(t, "camp alpha", targets, 0, 2)
	if err := client.ShipJournal(ctx, lease1.ID, journal); !errors.Is(err, dist.ErrLeaseLost) {
		t.Fatalf("stale ship: %v", err)
	}
	merged := filepath.Join(dir, campaign.PathLabel("camp alpha"), campaign.ShardFilename(0))
	if _, err := os.Stat(merged); !os.IsNotExist(err) {
		t.Fatalf("stale journal merged: %v", err)
	}

	// The new holder ships the same bytes: accepted.
	if err := client.ShipJournal(ctx, lease2.ID, journal); err != nil {
		t.Fatalf("ship: %v", err)
	}
	if _, err := os.Stat(merged); err != nil {
		t.Fatalf("journal not merged: %v", err)
	}
	if st := co.Status(); st.Done != 1 || st.Leased != 0 {
		t.Fatalf("status after merge = %+v", st)
	}
}

// TestJournalValidationRejects: a corrupt or wrong-range upload is
// refused WITHOUT killing the lease — the worker can retry with good
// bytes.
func TestJournalValidationRejects(t *testing.T) {
	targets := testTargets(20)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	_, client, _ := newTestCoordinator(t, targets, 2, time.Minute, clock.now)
	ctx := context.Background()

	reply, err := client.Lease(ctx, "w1")
	if err != nil || reply.Lease == nil {
		t.Fatalf("lease: %+v, %v", reply, err)
	}
	lease := *reply.Lease

	if err := client.ShipJournal(ctx, lease.ID, []byte("garbage")); err == nil {
		t.Fatal("garbage journal accepted")
	}
	// A valid journal for the WRONG range (shard 1's) is also refused.
	wrong := rangeJournal(t, "camp alpha", targets, 1, 2)
	if err := client.ShipJournal(ctx, lease.ID, wrong); err == nil {
		t.Fatal("wrong-range journal accepted")
	}
	// The lease survived both rejects.
	right := rangeJournal(t, "camp alpha", targets, 0, 2)
	if err := client.ShipJournal(ctx, lease.ID, right); err != nil {
		t.Fatalf("valid retry refused: %v", err)
	}
}

// TestWorkerFleetWithLostWorker is the engine-level end-to-end: a
// saboteur claims a lease and goes silent (the in-process stand-in
// for a SIGKILLed worker), real workers drain everything else, the
// saboteur's range expires and is re-crawled — and the assembled
// directory replays through Resume with the exact delivery sequence
// of a local single-machine Run.
func TestWorkerFleetWithLostWorker(t *testing.T) {
	targets := testTargets(60)
	const shards = 4
	hash := campaign.HashTargets(targets)

	dir := t.TempDir()
	co, err := dist.NewCoordinator(dist.CoordinatorConfig{
		Dir: dir,
		Specs: []dist.Spec{{
			Label: "camp alpha", Targets: len(targets), TargetsHash: hash, Shards: shards,
		}},
		TTL: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	client := &dist.Client{BaseURL: srv.URL, MaxRetries: 2, Backoff: time.Millisecond}

	// The saboteur claims the first range and is never heard from again.
	reply, err := client.Lease(context.Background(), "saboteur")
	if err != nil || reply.Lease == nil {
		t.Fatalf("saboteur lease: %+v, %v", reply, err)
	}
	killed := *reply.Lease

	runner := func(ctx context.Context, lease dist.Lease, scratch string) (string, error) {
		cfg := campaign.Config{Label: lease.Label, Checkpoint: &campaign.Checkpoint{
			Dir: scratch, Codec: textCodec{}, TargetsHash: lease.TargetsHash,
		}}
		if _, err := campaign.RunRange(ctx, cfg, targets, lease.Shard, lease.Shards, lease.Lo, lease.Hi, visitTarget, nil); err != nil {
			return "", err
		}
		return filepath.Join(scratch, campaign.ShardFilename(lease.Shard)), nil
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &dist.Worker{
				Client: client,
				Name:   fmt.Sprintf("worker-%d", i),
				Runner: runner,
				Poll:   20 * time.Millisecond,
			}
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := co.Wait(waitCtx); err != nil {
		t.Fatalf("coordinator never finished: %v", err)
	}
	st := co.Status()
	if st.Done != shards || st.Expired < 1 {
		t.Fatalf("status = %+v (want %d done, >=1 expired for lease %s)", st, shards, killed.ID)
	}

	// The assembled campaign replays byte-identically to a local run.
	var want, got []string
	sink := func(out *[]string) func(campaign.Result[string]) {
		return func(r campaign.Result[string]) { *out = append(*out, fmt.Sprintf("%d:%s", r.Index, r.Value)) }
	}
	if _, err := campaign.Run(context.Background(), campaign.Config{Label: "camp alpha", Shards: shards},
		targets, visitTarget, sink(&want)); err != nil {
		t.Fatal(err)
	}
	rcfg := campaign.Config{Label: "camp alpha", Checkpoint: &campaign.Checkpoint{
		Dir: filepath.Join(dir, campaign.PathLabel("camp alpha")), Codec: textCodec{}, TargetsHash: hash,
	}}
	stats, err := campaign.Resume(context.Background(), rcfg, targets,
		func(_ context.Context, d string) (string, error) {
			t.Errorf("assembled resume re-visited %s", d)
			return "", nil
		}, sink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Replayed != int64(len(targets)) {
		t.Fatalf("replayed %d of %d", stats.Replayed, len(targets))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("delivery %d: got %q, want %q", i, got[i], want[i])
		}
	}
}
