package dist

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"cookiewalk/internal/campaign"
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// Dir is the assembly root: each campaign's shipped journals land
	// in Dir/<campaign.PathLabel(label)>, the exact directory layout the
	// study's own checkpointing uses, so the merged result is directly
	// resumable. The lease ledger (ledger.cwl) lives at the root of Dir;
	// restarting a coordinator on the same Dir resumes the fleet where
	// it died instead of re-crawling merged ranges.
	Dir string
	// Specs are the campaigns to distribute, in lease order.
	Specs []Spec
	// TTL is the lease lifetime (default 30s). A lease not heartbeated
	// within TTL is revoked and its range re-leased.
	TTL time.Duration
	// Token, when non-empty, locks the HTTP API behind a shared-secret
	// bearer token: every request must carry
	// "Authorization: Bearer <Token>" or is refused with 401
	// (constant-time compare). Workers treat 401 as definitive — no
	// retry storm against a fleet they cannot join.
	Token string
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// unit is one leasable shard range of one campaign and its lifecycle:
// pending → leased (→ pending again on expiry) → done.
type unit struct {
	spec     Spec
	shard    int
	lo, hi   int
	dir      string // assembly dir of the unit's campaign
	done     bool
	lease    string // current lease ID, "" when pending or done
	worker   string
	deadline time.Time
}

// Coordinator owns the unit ledger and the assembly directories. All
// state transitions happen under mu and are appended to the durable
// lease ledger before the response that reveals them is sent; journal
// bytes are validated and written outside the lock, with the lease
// re-verified before the final rename is made visible.
type Coordinator struct {
	cfg CoordinatorConfig
	ttl time.Duration

	mu          sync.Mutex
	led         *ledger
	ledDead     bool // logged the ledger's first failure
	closed      bool // Close called: stop granting, refuse state changes
	incarnation int  // 1 on a fresh ledger, +1 per recovery
	recovered   int  // units found merged-and-valid during recovery
	units       []*unit
	leases      map[string]*unit
	seq         int
	pending     int
	expired     int
	doneCh      chan struct{} // closed when every unit is done
}

// NewCoordinator prepares the assembly directories (one per campaign)
// and builds the lease ledger: one unit per shard range of every spec,
// partitioned exactly as a single-machine Run would partition it.
//
// If Dir already holds a lease ledger from a previous coordinator over
// the SAME spec set, the coordinator recovers instead of starting
// over: ledger events are replayed, every range recorded (or found) as
// merged is re-verified against its assembly file with
// campaign.CheckJournal, verified ranges stay done, and everything
// else — including ranges that were leased out when the previous
// incarnation died — returns to the pending queue. Stale lease IDs are
// not restored, so requests under them hit the ordinary 410 fence and
// their holders simply lease again. A ledger recorded for a different
// spec set is refused outright.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("dist: coordinator needs an assembly dir")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one campaign spec")
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	co := &Coordinator{
		cfg:    cfg,
		ttl:    ttl,
		leases: make(map[string]*unit),
		doneCh: make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		if spec.Label == "" || spec.Targets <= 0 || spec.Shards <= 0 {
			return nil, fmt.Errorf("dist: invalid spec %+v", spec)
		}
		dir := filepath.Join(cfg.Dir, campaign.PathLabel(spec.Label))
		if seen[dir] {
			return nil, fmt.Errorf("dist: campaign %q: assembly dir %s already claimed by another spec", spec.Label, dir)
		}
		seen[dir] = true
		for s := 0; s < spec.Shards; s++ {
			lo, hi := campaign.ShardRange(spec.Targets, spec.Shards, s)
			co.units = append(co.units, &unit{spec: spec, shard: s, lo: lo, hi: hi, dir: dir})
		}
	}

	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("dist: assembly dir: %w", err)
	}
	led, events, err := openLedger(filepath.Join(cfg.Dir, ledgerName))
	if err != nil {
		return nil, fmt.Errorf("dist: open lease ledger: %w", err)
	}
	co.led = led
	if err := co.recover(events); err != nil {
		led.close()
		return nil, err
	}
	if err := led.append(ledgerEvent{Ev: evStart, Inc: co.incarnation, Fleet: fleetHash(cfg.Specs)}); err != nil {
		led.close()
		return nil, fmt.Errorf("dist: %w", err)
	}
	if co.allDoneLocked() {
		// Every range was already merged before this restart: Wait must
		// not block for a merge that will never come.
		close(co.doneCh)
	}
	return co, nil
}

// recover initializes unit state from a prior incarnation's ledger
// events (none = fresh start). Called from NewCoordinator only, before
// the coordinator is shared, so no locking.
func (co *Coordinator) recover(events []ledgerEvent) error {
	fleet := fleetHash(co.cfg.Specs)
	if len(events) == 0 {
		// Fresh fleet: wipe stale journals and write each campaign's
		// manifest, exactly as a fresh checkpointed Run would.
		co.incarnation = 1
		for _, spec := range co.cfg.Specs {
			dir := filepath.Join(co.cfg.Dir, campaign.PathLabel(spec.Label))
			if err := campaign.InitCheckpointDir(dir, spec.Label, spec.Targets, spec.TargetsHash); err != nil {
				return fmt.Errorf("dist: campaign %q: %w", spec.Label, err)
			}
		}
		co.pending = len(co.units)
		return nil
	}

	merged := make(map[string]bool)
	for _, ev := range events {
		switch ev.Ev {
		case evStart:
			if ev.Fleet != fleet {
				return fmt.Errorf(
					"dist: lease ledger in %s belongs to a different fleet (ledger %#x vs configured %#x — other campaigns, universe or shard count); clear the directory to start over",
					co.cfg.Dir, ev.Fleet, fleet)
			}
			co.incarnation = ev.Inc
		case evGrant:
			if ev.Seq > co.seq {
				co.seq = ev.Seq
			}
		case evMerge:
			merged[ev.Label+"\x00"+fmt.Sprint(ev.Shard)] = true
		}
	}
	co.incarnation++

	// Re-establish each campaign's manifest without wiping the journals
	// merged before the crash.
	for _, spec := range co.cfg.Specs {
		dir := filepath.Join(co.cfg.Dir, campaign.PathLabel(spec.Label))
		if err := campaign.EnsureCheckpointDir(dir, spec.Label, spec.Targets, spec.TargetsHash); err != nil {
			return fmt.Errorf("dist: campaign %q: %w", spec.Label, err)
		}
	}

	// A unit is done only if its assembly file verifies NOW — the
	// ledger's merge events are candidates, but so is any shard file
	// present on disk (covering a crash between the rename and the
	// ledger append). A missing or corrupt file re-queues the range.
	for _, u := range co.units {
		path := filepath.Join(u.dir, campaign.ShardFilename(u.shard))
		data, err := os.ReadFile(path)
		if err != nil {
			if !os.IsNotExist(err) {
				return fmt.Errorf("dist: recover %s: %w", path, err)
			}
			if merged[u.spec.Label+"\x00"+fmt.Sprint(u.shard)] {
				co.logf("dist: ledger says %s shard %d merged but %s is missing — re-queuing", u.spec.Label, u.shard, path)
			}
			continue
		}
		if err := campaign.CheckJournal(data, u.lo, u.hi); err != nil {
			co.logf("dist: recovered journal %s failed verification (%v) — re-queuing range", path, err)
			os.Remove(path)
			continue
		}
		u.done = true
		co.recovered++
	}
	co.pending = 0
	for _, u := range co.units {
		if !u.done {
			co.pending++
		}
	}
	co.logf("dist: recovered lease ledger: %d of %d ranges already merged and verified, %d pending — resuming as incarnation %d",
		co.recovered, len(co.units), co.pending, co.incarnation)
	return nil
}

func (co *Coordinator) now() time.Time {
	if co.cfg.Now != nil {
		return co.cfg.Now()
	}
	return time.Now()
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// ledgerAppend records one event, logging (once) if the ledger has
// gone dead. Durability failures never stop the fleet: recovery can
// rebuild merge state from the assembly files alone.
func (co *Coordinator) ledgerAppend(ev ledgerEvent) {
	if err := co.led.append(ev); err != nil && !co.ledDead {
		co.ledDead = true
		co.logf("dist: lease ledger failed, continuing without durability (a restart will recover from assembly files only): %v", err)
	}
}

// Close makes the coordinator refuse further state transitions (lease
// grants, heartbeats, journal merges answer 503 so workers keep
// retrying their backoff loop until a restarted coordinator takes
// over) and fsyncs + closes the lease ledger. It is the graceful half
// of crash-safety: after Close returns, the on-disk state is exactly
// what a restart recovers from.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closed {
		return nil
	}
	co.closed = true
	return co.led.close()
}

// expireLocked revokes every lease past its deadline, returning the
// ranges to the pending queue. Called under mu at the top of every
// state-touching request — the coordinator needs no background timer.
func (co *Coordinator) expireLocked(now time.Time) {
	for id, u := range co.leases {
		if now.After(u.deadline) {
			delete(co.leases, id)
			co.logf("dist: lease %s expired (%s shard %d [%d,%d) worker %s) — re-leasing",
				id, u.spec.Label, u.shard, u.lo, u.hi, u.worker)
			u.lease, u.worker = "", ""
			co.expired++
			co.pending++
			co.ledgerAppend(ledgerEvent{Ev: evExpire, Lease: id, Label: u.spec.Label, Shard: u.shard, Lo: u.lo, Hi: u.hi})
		}
	}
}

// grantLocked hands out the first pending unit, in ledger order. The
// grant is recorded before the lease is revealed; lease IDs embed the
// incarnation so they stay unique even if the ledger (and with it the
// recovered sequence counter) was lost.
func (co *Coordinator) grantLocked(worker string, now time.Time) *Lease {
	for _, u := range co.units {
		if u.done || u.lease != "" {
			continue
		}
		co.seq++
		id := fmt.Sprintf("L%02d-%06d", co.incarnation, co.seq)
		u.lease, u.worker, u.deadline = id, worker, now.Add(co.ttl)
		co.leases[id] = u
		co.pending--
		co.ledgerAppend(ledgerEvent{Ev: evGrant, Seq: co.seq, Lease: id, Worker: worker,
			Label: u.spec.Label, Shard: u.shard, Lo: u.lo, Hi: u.hi})
		co.logf("dist: leased %s shard %d [%d,%d) to %s as %s", u.spec.Label, u.shard, u.lo, u.hi, worker, id)
		return &Lease{
			ID: id, Label: u.spec.Label,
			Shard: u.shard, Shards: u.spec.Shards, Lo: u.lo, Hi: u.hi,
			Targets: u.spec.Targets, TargetsHash: u.spec.TargetsHash,
			TTLMillis: co.ttl.Milliseconds(),
		}
	}
	return nil
}

// allDoneLocked reports whether every unit has merged.
func (co *Coordinator) allDoneLocked() bool {
	for _, u := range co.units {
		if !u.done {
			return false
		}
	}
	return true
}

// Status snapshots the ledger counters (after an expiry sweep).
func (co *Coordinator) Status() Status {
	co.mu.Lock()
	defer co.mu.Unlock()
	if !co.closed {
		// After Close the snapshot is frozen: expiring leases would try
		// to append to the closed ledger.
		co.expireLocked(co.now())
	}
	st := Status{
		Units: len(co.units), Pending: co.pending, Leased: len(co.leases),
		Expired: co.expired, Incarnation: co.incarnation, Recovered: co.recovered,
	}
	st.Done = st.Units - st.Pending - st.Leased
	return st
}

// Wait blocks until every shard range of every campaign has been
// shipped and merged, or ctx is canceled.
func (co *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-co.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the coordinator's HTTP API, wrapped in bearer-token
// auth when CoordinatorConfig.Token is set.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/campaigns", co.handleCampaigns)
	mux.HandleFunc("POST /v1/lease", co.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("PUT /v1/journal", co.handleJournal)
	mux.HandleFunc("GET /v1/status", co.handleStatus)
	if co.cfg.Token == "" {
		return mux
	}
	want := sha256.Sum256([]byte(co.cfg.Token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		// Compare digests, not tokens: constant-time regardless of
		// attacker-controlled length.
		got := sha256.Sum256([]byte(tok))
		if !ok || subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
			http.Error(w, "missing or invalid fleet token", http.StatusUnauthorized)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

// closedLocked answers state-changing requests during graceful
// shutdown: 503, which clients classify as transient, so workers poll
// their backoff loop until a restarted coordinator takes the address
// back over.
func (co *Coordinator) closedLocked(w http.ResponseWriter) bool {
	if co.closed {
		http.Error(w, "coordinator shutting down — retry against its restart", http.StatusServiceUnavailable)
		return true
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (co *Coordinator) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, campaignsReply{TTLMillis: co.ttl.Milliseconds(), Campaigns: co.cfg.Specs})
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.Status())
}

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closedLocked(w) {
		return
	}
	now := co.now()
	co.expireLocked(now)
	if co.allDoneLocked() {
		writeJSON(w, http.StatusOK, leaseReply{Status: "done"})
		return
	}
	if l := co.grantLocked(req.Worker, now); l != nil {
		writeJSON(w, http.StatusOK, leaseReply{Status: "lease", Lease: l})
		return
	}
	// Everything outstanding is leased to someone: ask again after a
	// fraction of the TTL, by which time a dead worker's lease expires.
	writeJSON(w, http.StatusOK, leaseReply{Status: "wait", RetryMS: max(co.ttl.Milliseconds()/4, 10)})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.closedLocked(w) {
		return
	}
	now := co.now()
	co.expireLocked(now)
	u, ok := co.leases[req.LeaseID]
	if !ok {
		co.ledgerAppend(ledgerEvent{Ev: evFence, Lease: req.LeaseID})
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	u.deadline = now.Add(co.ttl)
	w.WriteHeader(http.StatusOK)
}

func (co *Coordinator) handleJournal(w http.ResponseWriter, r *http.Request) {
	leaseID := r.URL.Query().Get("lease")
	if leaseID == "" {
		http.Error(w, "missing lease parameter", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read journal: "+err.Error(), http.StatusBadRequest)
		return
	}

	// Snapshot the unit under the lock, then validate and stage the
	// bytes outside it — CheckJournal walks every frame and must not
	// stall lease traffic.
	co.mu.Lock()
	if co.closedLocked(w) {
		co.mu.Unlock()
		return
	}
	co.expireLocked(co.now())
	u, ok := co.leases[leaseID]
	if !ok {
		co.ledgerAppend(ledgerEvent{Ev: evFence, Lease: leaseID})
		co.mu.Unlock()
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	shard, lo, hi, dir, label := u.shard, u.lo, u.hi, u.dir, u.spec.Label
	co.mu.Unlock()

	if err := campaign.CheckJournal(data, lo, hi); err != nil {
		http.Error(w, "journal rejected: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	final := filepath.Join(dir, campaign.ShardFilename(shard))
	tmp := final + ".tmp-" + leaseID
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		http.Error(w, "stage journal: "+err.Error(), http.StatusInternalServerError)
		return
	}

	// Re-verify the lease before publishing: if it expired during
	// validation the range belongs to someone else now.
	co.mu.Lock()
	if co.closedLocked(w) {
		co.mu.Unlock()
		os.Remove(tmp)
		return
	}
	co.expireLocked(co.now())
	if cur, ok := co.leases[leaseID]; !ok || cur != u {
		co.ledgerAppend(ledgerEvent{Ev: evFence, Lease: leaseID})
		co.mu.Unlock()
		os.Remove(tmp)
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		co.mu.Unlock()
		os.Remove(tmp)
		http.Error(w, "merge journal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	delete(co.leases, leaseID)
	u.done, u.lease = true, ""
	co.ledgerAppend(ledgerEvent{Ev: evMerge, Lease: leaseID, Label: label, Shard: shard, Lo: lo, Hi: hi})
	finished := co.allDoneLocked()
	co.mu.Unlock()

	co.logf("dist: merged %s shard %d [%d,%d) from lease %s (%d bytes)", label, shard, lo, hi, leaseID, len(data))
	w.WriteHeader(http.StatusOK)
	if finished {
		// Only the request that merged the LAST unit sees finished ==
		// true (done flips are monotonic under mu), so this close runs
		// exactly once.
		close(co.doneCh)
	}
}
