package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"cookiewalk/internal/campaign"
)

// CoordinatorConfig configures a fleet coordinator.
type CoordinatorConfig struct {
	// Dir is the assembly root: each campaign's shipped journals land
	// in Dir/<campaign.PathLabel(label)>, the exact directory layout the
	// study's own checkpointing uses, so the merged result is directly
	// resumable.
	Dir string
	// Specs are the campaigns to distribute, in lease order.
	Specs []Spec
	// TTL is the lease lifetime (default 30s). A lease not heartbeated
	// within TTL is revoked and its range re-leased.
	TTL time.Duration
	// Now overrides the clock (tests); nil means time.Now.
	Now func() time.Time
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// unit is one leasable shard range of one campaign and its lifecycle:
// pending → leased (→ pending again on expiry) → done.
type unit struct {
	spec     Spec
	shard    int
	lo, hi   int
	dir      string // assembly dir of the unit's campaign
	done     bool
	lease    string // current lease ID, "" when pending or done
	worker   string
	deadline time.Time
}

// Coordinator owns the unit ledger and the assembly directories. All
// state transitions happen under mu; journal bytes are validated and
// written outside the lock, with the lease re-verified before the
// final rename is made visible.
type Coordinator struct {
	cfg CoordinatorConfig
	ttl time.Duration

	mu      sync.Mutex
	units   []*unit
	leases  map[string]*unit
	seq     int
	pending int
	expired int
	doneCh  chan struct{} // closed when every unit is done
}

// NewCoordinator prepares the assembly directories (one per campaign,
// manifest written, stale journals wiped — see campaign.InitCheckpointDir)
// and builds the lease ledger: one unit per shard range of every spec,
// partitioned exactly as a single-machine Run would partition it.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("dist: coordinator needs an assembly dir")
	}
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one campaign spec")
	}
	ttl := cfg.TTL
	if ttl <= 0 {
		ttl = 30 * time.Second
	}
	co := &Coordinator{
		cfg:    cfg,
		ttl:    ttl,
		leases: make(map[string]*unit),
		doneCh: make(chan struct{}),
	}
	seen := make(map[string]bool, len(cfg.Specs))
	for _, spec := range cfg.Specs {
		if spec.Label == "" || spec.Targets <= 0 || spec.Shards <= 0 {
			return nil, fmt.Errorf("dist: invalid spec %+v", spec)
		}
		dir := filepath.Join(cfg.Dir, campaign.PathLabel(spec.Label))
		if seen[dir] {
			return nil, fmt.Errorf("dist: campaign %q: assembly dir %s already claimed by another spec", spec.Label, dir)
		}
		seen[dir] = true
		if err := campaign.InitCheckpointDir(dir, spec.Label, spec.Targets, spec.TargetsHash); err != nil {
			return nil, fmt.Errorf("dist: campaign %q: %w", spec.Label, err)
		}
		for s := 0; s < spec.Shards; s++ {
			lo, hi := campaign.ShardRange(spec.Targets, spec.Shards, s)
			co.units = append(co.units, &unit{spec: spec, shard: s, lo: lo, hi: hi, dir: dir})
		}
	}
	co.pending = len(co.units)
	return co, nil
}

func (co *Coordinator) now() time.Time {
	if co.cfg.Now != nil {
		return co.cfg.Now()
	}
	return time.Now()
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

// expireLocked revokes every lease past its deadline, returning the
// ranges to the pending queue. Called under mu at the top of every
// state-touching request — the coordinator needs no background timer.
func (co *Coordinator) expireLocked(now time.Time) {
	for id, u := range co.leases {
		if now.After(u.deadline) {
			delete(co.leases, id)
			co.logf("dist: lease %s expired (%s shard %d [%d,%d) worker %s) — re-leasing",
				id, u.spec.Label, u.shard, u.lo, u.hi, u.worker)
			u.lease, u.worker = "", ""
			co.expired++
			co.pending++
		}
	}
}

// grantLocked hands out the first pending unit, in ledger order.
func (co *Coordinator) grantLocked(worker string, now time.Time) *Lease {
	for _, u := range co.units {
		if u.done || u.lease != "" {
			continue
		}
		co.seq++
		id := fmt.Sprintf("L%06d", co.seq)
		u.lease, u.worker, u.deadline = id, worker, now.Add(co.ttl)
		co.leases[id] = u
		co.pending--
		co.logf("dist: leased %s shard %d [%d,%d) to %s as %s", u.spec.Label, u.shard, u.lo, u.hi, worker, id)
		return &Lease{
			ID: id, Label: u.spec.Label,
			Shard: u.shard, Shards: u.spec.Shards, Lo: u.lo, Hi: u.hi,
			Targets: u.spec.Targets, TargetsHash: u.spec.TargetsHash,
			TTLMillis: co.ttl.Milliseconds(),
		}
	}
	return nil
}

// allDoneLocked reports whether every unit has merged.
func (co *Coordinator) allDoneLocked() bool {
	for _, u := range co.units {
		if !u.done {
			return false
		}
	}
	return true
}

// Status snapshots the ledger counters (after an expiry sweep).
func (co *Coordinator) Status() Status {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.expireLocked(co.now())
	st := Status{Units: len(co.units), Pending: co.pending, Leased: len(co.leases), Expired: co.expired}
	st.Done = st.Units - st.Pending - st.Leased
	return st
}

// Wait blocks until every shard range of every campaign has been
// shipped and merged, or ctx is canceled.
func (co *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-co.doneCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the coordinator's HTTP API.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/campaigns", co.handleCampaigns)
	mux.HandleFunc("POST /v1/lease", co.handleLease)
	mux.HandleFunc("POST /v1/heartbeat", co.handleHeartbeat)
	mux.HandleFunc("PUT /v1/journal", co.handleJournal)
	mux.HandleFunc("GET /v1/status", co.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (co *Coordinator) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, campaignsReply{TTLMillis: co.ttl.Milliseconds(), Campaigns: co.cfg.Specs})
}

func (co *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.Status())
}

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad lease request: "+err.Error(), http.StatusBadRequest)
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.now()
	co.expireLocked(now)
	if co.allDoneLocked() {
		writeJSON(w, http.StatusOK, leaseReply{Status: "done"})
		return
	}
	if l := co.grantLocked(req.Worker, now); l != nil {
		writeJSON(w, http.StatusOK, leaseReply{Status: "lease", Lease: l})
		return
	}
	// Everything outstanding is leased to someone: ask again after a
	// fraction of the TTL, by which time a dead worker's lease expires.
	writeJSON(w, http.StatusOK, leaseReply{Status: "wait", RetryMS: max(co.ttl.Milliseconds()/4, 10)})
}

func (co *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad heartbeat: "+err.Error(), http.StatusBadRequest)
		return
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	now := co.now()
	co.expireLocked(now)
	u, ok := co.leases[req.LeaseID]
	if !ok {
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	u.deadline = now.Add(co.ttl)
	w.WriteHeader(http.StatusOK)
}

func (co *Coordinator) handleJournal(w http.ResponseWriter, r *http.Request) {
	leaseID := r.URL.Query().Get("lease")
	if leaseID == "" {
		http.Error(w, "missing lease parameter", http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read journal: "+err.Error(), http.StatusBadRequest)
		return
	}

	// Snapshot the unit under the lock, then validate and stage the
	// bytes outside it — CheckJournal walks every frame and must not
	// stall lease traffic.
	co.mu.Lock()
	co.expireLocked(co.now())
	u, ok := co.leases[leaseID]
	if !ok {
		co.mu.Unlock()
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	shard, lo, hi, dir, label := u.shard, u.lo, u.hi, u.dir, u.spec.Label
	co.mu.Unlock()

	if err := campaign.CheckJournal(data, lo, hi); err != nil {
		http.Error(w, "journal rejected: "+err.Error(), http.StatusUnprocessableEntity)
		return
	}
	final := filepath.Join(dir, campaign.ShardFilename(shard))
	tmp := final + ".tmp-" + leaseID
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		http.Error(w, "stage journal: "+err.Error(), http.StatusInternalServerError)
		return
	}

	// Re-verify the lease before publishing: if it expired during
	// validation the range belongs to someone else now.
	co.mu.Lock()
	co.expireLocked(co.now())
	if cur, ok := co.leases[leaseID]; !ok || cur != u {
		co.mu.Unlock()
		os.Remove(tmp)
		http.Error(w, "lease expired or unknown", http.StatusGone)
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		co.mu.Unlock()
		os.Remove(tmp)
		http.Error(w, "merge journal: "+err.Error(), http.StatusInternalServerError)
		return
	}
	delete(co.leases, leaseID)
	u.done, u.lease = true, ""
	finished := co.allDoneLocked()
	co.mu.Unlock()

	co.logf("dist: merged %s shard %d [%d,%d) from lease %s (%d bytes)", label, shard, lo, hi, leaseID, len(data))
	w.WriteHeader(http.StatusOK)
	if finished {
		// Only the request that merged the LAST unit sees finished ==
		// true (done flips are monotonic under mu), so this close runs
		// exactly once.
		close(co.doneCh)
	}
}
