package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"
)

// Worker is the fleet client loop: lease a shard range, run it through
// the Runner (which produces a finished shard journal on local disk),
// ship the journal back, repeat until the coordinator reports every
// range merged. Heartbeats run concurrently with the Runner at TTL/3;
// a fenced lease (the coordinator revoked it after a missed TTL)
// cancels the in-flight Runner and the range is dropped without error —
// some other worker owns it now.
//
// Workers outlive coordinator restarts: a transient lease failure (the
// client exhausted its retries against network errors or 5xx — what a
// coordinator crash or graceful shutdown looks like) keeps the worker
// polling until the endpoint returns, bounded only by MaxDowntime; a
// finished journal whose every fresh upload dies on transport is
// abandoned the same way (the lease expires after its TTL and the
// range re-leases). Definitive refusals — a wrong token (401), a
// journal the coordinator keeps rejecting, a Runner failure — are
// fatal and logged as such.
type Worker struct {
	// Client reaches the coordinator. Required.
	Client *Client
	// Name identifies this worker in coordinator logs.
	Name string
	// Runner executes one leased range: it must run the lease's global
	// [Lo, Hi) targets as shard Lease.Shard with a checkpoint journal
	// under dir, and return the path of the finished journal file.
	// Required.
	Runner func(ctx context.Context, lease Lease, dir string) (string, error)
	// ScratchDir is where per-lease working directories are created
	// (default: the OS temp dir).
	ScratchDir string
	// Poll is the fallback wait when the coordinator says "wait"
	// without a retry hint, and the pause between lease attempts while
	// the coordinator is unreachable (default 500ms).
	Poll time.Duration
	// MaxDowntime bounds how long the coordinator may stay unreachable
	// (continuous transient lease failures) before the worker gives up.
	// Zero means wait forever — the right default for a fleet whose
	// coordinator is expected to restart and resume.
	MaxDowntime time.Duration
	// ShipRetries bounds fresh re-uploads of a finished journal after a
	// retryable shipping failure — a torn PUT that the coordinator
	// rejected (422) or a transient transport error (default 3). The
	// heartbeat keeps the lease alive between attempts, and each retry
	// is a complete fresh upload, never a resume of the torn one.
	ShipRetries int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) poll() time.Duration {
	if w.Poll > 0 {
		return w.Poll
	}
	return 500 * time.Millisecond
}

// Run loops until the coordinator's campaigns are fully merged or ctx
// is canceled. Lost leases are not errors; an unreachable coordinator
// is waited out (up to MaxDowntime); Runner failures and definitive
// refusals are errors.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil || w.Runner == nil {
		return fmt.Errorf("dist: worker needs Client and Runner")
	}
	var downSince time.Time
	for {
		reply, err := w.Client.Lease(ctx, w.Name)
		switch {
		case err == nil:
			downSince = time.Time{}
		case IsTransient(err) && ctx.Err() == nil:
			// The coordinator is unreachable or erroring — possibly
			// mid-restart. Keep polling; its ledger recovery will hand
			// our ranges right back.
			now := time.Now()
			if downSince.IsZero() {
				downSince = now
			}
			if w.MaxDowntime > 0 && now.Sub(downSince) > w.MaxDowntime {
				return fmt.Errorf("dist: worker %s: fatal: coordinator unreachable for over %s: %w", w.Name, w.MaxDowntime, err)
			}
			w.logf("dist: worker %s: lease failed (retryable, coordinator may be restarting): %v", w.Name, err)
			select {
			case <-time.After(w.poll()):
			case <-ctx.Done():
				return context.Cause(ctx)
			}
			continue
		default:
			// 401, malformed reply, canceled context: no retry can
			// change the answer.
			return fmt.Errorf("dist: worker %s: fatal: %w", w.Name, err)
		}
		switch {
		case reply.Done:
			w.logf("dist: worker %s: all ranges merged, exiting", w.Name)
			return nil
		case reply.Lease == nil:
			wait := reply.Retry
			if wait <= 0 {
				wait = w.poll()
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		default:
			if err := w.runLease(ctx, *reply.Lease); err != nil {
				return fmt.Errorf("dist: worker %s: fatal: %w", w.Name, err)
			}
		}
	}
}

// runLease executes one leased range end to end: scratch dir, Runner
// under a heartbeat, then journal shipping (with fresh-upload retries
// for torn or transiently failed PUTs). A lease lost at any stage
// abandons the range silently.
func (w *Worker) runLease(ctx context.Context, lease Lease) error {
	dir, err := os.MkdirTemp(w.ScratchDir, "cookiewalk-lease-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	w.logf("dist: worker %s: running %s shard %d [%d,%d) under lease %s",
		w.Name, lease.Label, lease.Shard, lease.Lo, lease.Hi, lease.ID)

	// The heartbeat goroutine keeps the lease alive through both the
	// crawl and the upload, and cancels the lease context the moment
	// the coordinator fences us off.
	leaseCtx, cancel := context.WithCancelCause(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := lease.TTL() / 3
		if interval <= 0 {
			interval = time.Second
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-tick.C:
				if err := w.Client.Heartbeat(leaseCtx, lease.ID); err != nil {
					if errors.Is(err, ErrLeaseLost) {
						cancel(ErrLeaseLost)
						return
					}
					// Transient heartbeat failures (after the client's own
					// retries) are survivable as long as one lands within
					// the TTL; keep ticking.
					w.logf("dist: worker %s: heartbeat %s failed (retryable): %v", w.Name, lease.ID, err)
				}
			}
		}
	}()
	stopHeartbeat := func() {
		cancel(nil)
		<-hbDone
	}

	journalPath, err := w.Runner(leaseCtx, lease, dir)
	if err != nil {
		stopHeartbeat()
		if errors.Is(err, ErrLeaseLost) || errors.Is(context.Cause(leaseCtx), ErrLeaseLost) {
			w.logf("dist: worker %s: lease %s lost mid-run, dropping range", w.Name, lease.ID)
			return nil
		}
		return err
	}
	err = w.shipWithRetry(leaseCtx, lease, journalPath)
	stopHeartbeat()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ErrLeaseLost) || errors.Is(context.Cause(leaseCtx), ErrLeaseLost):
		w.logf("dist: worker %s: lease %s lost before shipping, dropping range", w.Name, lease.ID)
		return nil
	case IsTransient(err) && ctx.Err() == nil:
		// Every fresh upload died on transport — the coordinator is
		// unreachable, likely mid-restart. Killing the worker here would
		// shrink the fleet exactly when it is already degraded; instead
		// abandon the range (our lease expires after its TTL and the
		// range re-leases — possibly right back to us) and return to the
		// lease loop, which waits the outage out under MaxDowntime.
		w.logf("dist: worker %s: abandoning lease %s after exhausted ship attempts (coordinator unreachable, range will re-lease): %v",
			w.Name, lease.ID, err)
		return nil
	}
	return err
}

// shipWithRetry uploads the finished journal, re-shipping a complete
// fresh copy after a retryable failure: a transient transport error,
// or a coordinator validation reject — which is what a PUT body torn
// in flight looks like from the merge side (the surviving prefix fails
// CheckJournal's coverage check, never its checksum guarantee). A lost
// lease or an auth refusal is definitive and returned as-is.
func (w *Worker) shipWithRetry(ctx context.Context, lease Lease, journalPath string) error {
	retries := w.ShipRetries
	if retries <= 0 {
		retries = 3
	}
	for attempt := 0; ; attempt++ {
		// Re-read per attempt: every upload is a fresh, complete copy
		// of the journal file.
		data, err := os.ReadFile(journalPath)
		if err != nil {
			return err
		}
		err = w.Client.ShipJournal(ctx, lease.ID, data)
		switch {
		case err == nil:
			w.logf("dist: worker %s: shipped %s shard %d (%d bytes)", w.Name, lease.Label, lease.Shard, len(data))
			return nil
		case errors.Is(err, ErrLeaseLost) || errors.Is(err, ErrUnauthorized) || ctx.Err() != nil:
			return err
		case attempt >= retries:
			return fmt.Errorf("ship journal %s: giving up after %d fresh uploads: %w", lease.ID, attempt+1, err)
		}
		w.logf("dist: worker %s: ship %s failed (retryable, fresh upload %d/%d): %v",
			w.Name, lease.ID, attempt+1, retries, err)
	}
}
