package dist

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"
)

// Worker is the fleet client loop: lease a shard range, run it through
// the Runner (which produces a finished shard journal on local disk),
// ship the journal back, repeat until the coordinator reports every
// range merged. Heartbeats run concurrently with the Runner at TTL/3;
// a fenced lease (the coordinator revoked it after a missed TTL)
// cancels the in-flight Runner and the range is dropped without error —
// some other worker owns it now.
type Worker struct {
	// Client reaches the coordinator. Required.
	Client *Client
	// Name identifies this worker in coordinator logs.
	Name string
	// Runner executes one leased range: it must run the lease's global
	// [Lo, Hi) targets as shard Lease.Shard with a checkpoint journal
	// under dir, and return the path of the finished journal file.
	// Required.
	Runner func(ctx context.Context, lease Lease, dir string) (string, error)
	// ScratchDir is where per-lease working directories are created
	// (default: the OS temp dir).
	ScratchDir string
	// Poll is the fallback wait when the coordinator says "wait"
	// without a retry hint (default 500ms).
	Poll time.Duration
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run loops until the coordinator's campaigns are fully merged or ctx
// is canceled. Lost leases are not errors; Runner failures are.
func (w *Worker) Run(ctx context.Context) error {
	if w.Client == nil || w.Runner == nil {
		return fmt.Errorf("dist: worker needs Client and Runner")
	}
	for {
		reply, err := w.Client.Lease(ctx, w.Name)
		if err != nil {
			return fmt.Errorf("dist: worker %s: %w", w.Name, err)
		}
		switch {
		case reply.Done:
			w.logf("dist: worker %s: all ranges merged, exiting", w.Name)
			return nil
		case reply.Lease == nil:
			wait := reply.Retry
			if wait <= 0 {
				if wait = w.Poll; wait <= 0 {
					wait = 500 * time.Millisecond
				}
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return context.Cause(ctx)
			}
		default:
			if err := w.runLease(ctx, *reply.Lease); err != nil {
				return fmt.Errorf("dist: worker %s: %w", w.Name, err)
			}
		}
	}
}

// runLease executes one leased range end to end: scratch dir, Runner
// under a heartbeat, then journal shipping. A lease lost at any stage
// abandons the range silently.
func (w *Worker) runLease(ctx context.Context, lease Lease) error {
	dir, err := os.MkdirTemp(w.ScratchDir, "cookiewalk-lease-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	w.logf("dist: worker %s: running %s shard %d [%d,%d) under lease %s",
		w.Name, lease.Label, lease.Shard, lease.Lo, lease.Hi, lease.ID)

	// The heartbeat goroutine keeps the lease alive through both the
	// crawl and the upload, and cancels the lease context the moment
	// the coordinator fences us off.
	leaseCtx, cancel := context.WithCancelCause(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := lease.TTL() / 3
		if interval <= 0 {
			interval = time.Second
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-leaseCtx.Done():
				return
			case <-tick.C:
				if err := w.Client.Heartbeat(leaseCtx, lease.ID); err != nil {
					if errors.Is(err, ErrLeaseLost) {
						cancel(ErrLeaseLost)
						return
					}
					// Transient heartbeat failures (after the client's own
					// retries) are survivable as long as one lands within
					// the TTL; keep ticking.
					w.logf("dist: worker %s: heartbeat %s: %v", w.Name, lease.ID, err)
				}
			}
		}
	}()
	stopHeartbeat := func() {
		cancel(nil)
		<-hbDone
	}

	journalPath, err := w.Runner(leaseCtx, lease, dir)
	if err != nil {
		stopHeartbeat()
		if errors.Is(err, ErrLeaseLost) || errors.Is(context.Cause(leaseCtx), ErrLeaseLost) {
			w.logf("dist: worker %s: lease %s lost mid-run, dropping range", w.Name, lease.ID)
			return nil
		}
		return err
	}
	data, err := os.ReadFile(journalPath)
	if err != nil {
		stopHeartbeat()
		return err
	}
	err = w.Client.ShipJournal(leaseCtx, lease.ID, data)
	stopHeartbeat()
	switch {
	case err == nil:
		w.logf("dist: worker %s: shipped %s shard %d (%d bytes)", w.Name, lease.Label, lease.Shard, len(data))
		return nil
	case errors.Is(err, ErrLeaseLost) || errors.Is(context.Cause(leaseCtx), ErrLeaseLost):
		w.logf("dist: worker %s: lease %s lost before shipping, dropping range", w.Name, lease.ID)
		return nil
	}
	return err
}
