// Package dist distributes campaigns across machines on top of the
// journal substrate: a coordinator serves shard-range leases over
// HTTP, workers claim a lease, run the range through campaign.RunRange
// with a local checkpoint journal, and ship the finished journal back;
// the coordinator validates each shipment and assembles it into a
// standard checkpoint directory that campaign.Resume replays into a
// byte-identical single-machine result.
//
// The protocol is deliberately thin — four JSON/bytes endpoints:
//
//	GET  /v1/campaigns               campaign identities (label, size, hash, shards)
//	POST /v1/lease                   claim the next pending shard range
//	POST /v1/heartbeat               keep a lease alive
//	PUT  /v1/journal?lease=ID        ship a finished shard journal
//	GET  /v1/status                  coordinator counters
//
// Robustness model. A lease carries a TTL; workers heartbeat at TTL/3
// while crawling, and a worker silent past the TTL is presumed dead —
// its range returns to the pending queue and is re-leased to the next
// asker. Lease IDs fence: once a lease expires, its heartbeats and
// journal uploads are refused (HTTP 410), so a worker that was merely
// slow can never complete a range that has been re-leased out from
// under it. Shipped journals are validated frame by frame
// (campaign.CheckJournal: checksums intact, complete in-order coverage
// of exactly the leased range) before the atomic rename into the
// assembly directory, and the assembled directory carries the PR-4
// manifest identity guard (campaign.InitCheckpointDir), so a journal
// can never merge into — or later replay onto — the wrong campaign.
//
// The coordinator itself is crash-safe: every lease-ledger transition
// is appended to a durable checksummed log in the assembly dir (see
// ledger.go), and a coordinator restarted on the same directory
// recovers — merged ranges stay merged, unmerged ranges are re-leased,
// and leases from the dead incarnation are fenced with the same 410
// path. Workers classify failures accordingly: network errors and 5xx
// are transient (retry — the coordinator may be mid-restart), while
// 401, 410 and validation rejects are definitive.
//
// Determinism. Visits are pure functions of the universe seed, so a
// range journal has identical bytes no matter which worker produced it
// or how often a range was re-leased; the merge replays records in
// global index order through the existing Resume path, making the
// assembled report byte-identical to an uninterrupted local run's.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"cookiewalk/internal/xrand"
)

// Spec describes one distributable campaign: enough identity for a
// worker to verify it is crawling the same universe the coordinator is
// assembling (label + target count + campaign.HashTargets), plus the
// shard partitioning the coordinator leases out.
type Spec struct {
	Label       string `json:"label"`
	Targets     int    `json:"targets"`
	TargetsHash uint64 `json:"targets_hash"`
	Shards      int    `json:"shards"`
}

// Lease is one granted shard range: campaign identity, the global
// [Lo, Hi) target range to run as shard Shard of Shards, and the TTL
// the worker must heartbeat within.
type Lease struct {
	ID          string `json:"id"`
	Label       string `json:"label"`
	Shard       int    `json:"shard"`
	Shards      int    `json:"shards"`
	Lo          int    `json:"lo"`
	Hi          int    `json:"hi"`
	Targets     int    `json:"targets"`
	TargetsHash uint64 `json:"targets_hash"`
	TTLMillis   int64  `json:"ttl_ms"`
}

// TTL returns the lease's lifetime as a duration.
func (l Lease) TTL() time.Duration { return time.Duration(l.TTLMillis) * time.Millisecond }

// Status is a point-in-time snapshot of coordinator state.
type Status struct {
	Units   int `json:"units"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	// Expired counts leases revoked after missing their TTL; each
	// revocation put its shard range back in the pending queue.
	Expired int `json:"expired"`
	// Incarnation counts coordinator starts over this assembly dir:
	// 1 for a fresh fleet, +1 per ledger recovery.
	Incarnation int `json:"incarnation"`
	// Recovered counts ranges found already merged (and re-verified)
	// when this incarnation replayed the lease ledger.
	Recovered int `json:"recovered"`
}

// Wire messages.
type campaignsReply struct {
	TTLMillis int64  `json:"ttl_ms"`
	Campaigns []Spec `json:"campaigns"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseReply struct {
	Status  string `json:"status"` // "lease", "wait" or "done"
	Lease   *Lease `json:"lease,omitempty"`
	RetryMS int64  `json:"retry_ms,omitempty"`
}

type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// LeaseReply is a worker-facing lease response: either a granted
// Lease, a Done campaign, or neither (every range currently leased —
// retry after Retry).
type LeaseReply struct {
	Done  bool
	Retry time.Duration
	Lease *Lease
}

// ErrLeaseLost reports a heartbeat or journal upload refused because
// the lease expired and its range went back to the pending queue (the
// coordinator's 410) — the worker holding it must abandon the range.
// Definitive: retrying the same lease ID can only ever yield another
// 410, including against a restarted coordinator (a recovery never
// resurrects the previous incarnation's leases).
var ErrLeaseLost = errors.New("dist: lease lost (expired and re-leased)")

// ErrUnauthorized reports a request refused by the coordinator's
// bearer-token check (HTTP 401). Definitive: the worker's token is
// wrong or missing, and no amount of retrying fixes credentials — the
// worker must exit rather than hammer a fleet it cannot join.
var ErrUnauthorized = errors.New("dist: unauthorized (missing or invalid fleet token)")

// TransientError marks a failure worth retrying at a higher level:
// the client exhausted its bounded retries against network errors, 5xx
// responses or torn response bodies — exactly what a coordinator
// restart looks like from outside. Workers keep polling through these
// (see Worker.MaxDowntime) instead of dying while the control plane is
// down.
type TransientError struct{ Err error }

func (e *TransientError) Error() string { return e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// IsTransient reports whether err is a retryable fleet failure, as
// opposed to a definitive refusal (ErrLeaseLost, ErrUnauthorized, a
// validation reject, a malformed reply).
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Client speaks the coordinator protocol, transparently retrying
// transient failures (network errors, 5xx) with seeded-jitter bounded
// exponential backoff. Definitive answers — a lease, a 401, a 410
// fence, a validation reject — are never retried; exhausted transient
// retries surface as a *TransientError so callers can keep waiting out
// a coordinator restart.
type Client struct {
	// BaseURL locates the coordinator ("http://host:port").
	BaseURL string
	// Token, when non-empty, is sent as "Authorization: Bearer <Token>"
	// on every request (must match the coordinator's configured token).
	Token string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds retries of transient failures per call
	// (default 4).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt and
	// capped at 2s (default 100ms). Each delay is jittered into
	// [base/2, base] from Seed, so a fleet of workers that lost the
	// coordinator at the same instant does not return as a
	// synchronized thundering herd when it comes back.
	Backoff time.Duration
	// Seed drives the backoff jitter deterministically (0 is a valid
	// seed). Give each worker a distinct seed.
	Seed uint64
	// Sleep overrides how retry delays are waited out (tests inject a
	// fake sleeper to assert the schedule). nil means a real timer
	// honoring ctx cancellation.
	Sleep func(d time.Duration)

	// calls numbers do() invocations so jitter differs across calls,
	// not just across attempts within one call.
	calls atomic.Uint64
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// jitter maps (seed, call, attempt) to a delay in [base/2, base] —
// full determinism for tests, decorrelation across workers and calls
// for the fleet. The formula lives in xrand.JitterDuration so the
// browser's visit retries share the exact discipline.
func jitter(seed, call uint64, attempt int, base time.Duration) time.Duration {
	return xrand.JitterDuration(seed, call, attempt, base)
}

// do issues one request with bounded-backoff retries of transient
// failures and returns the final response body and status code. A 401
// is definitive and returned as ErrUnauthorized; exhausted retries are
// returned as *TransientError.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) ([]byte, int, error) {
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 4
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	call := c.calls.Add(1)
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.Token != "" {
			req.Header.Set("Authorization", "Bearer "+c.Token)
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusUnauthorized {
				return nil, resp.StatusCode, fmt.Errorf("%s %s: %w", method, path, ErrUnauthorized)
			}
			if rerr == nil && resp.StatusCode < 500 {
				return data, resp.StatusCode, nil
			}
			if rerr != nil {
				lastErr = fmt.Errorf("%s %s: read response: %w", method, path, rerr)
			} else {
				lastErr = fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(data))
			}
		} else {
			lastErr = err
		}
		if attempt >= maxRetries {
			return nil, 0, &TransientError{Err: lastErr}
		}
		delay := jitter(c.Seed, call, attempt, backoff)
		if c.Sleep != nil {
			c.Sleep(delay)
		} else {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, 0, context.Cause(ctx)
			}
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// Campaigns fetches the coordinator's campaign specs — the worker-side
// identity check before any lease is claimed.
func (c *Client) Campaigns(ctx context.Context) ([]Spec, error) {
	data, code, err := c.do(ctx, http.MethodGet, "/v1/campaigns", "", nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("dist: campaigns: status %d: %s", code, bytes.TrimSpace(data))
	}
	var reply campaignsReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return nil, fmt.Errorf("dist: campaigns: %w", err)
	}
	return reply.Campaigns, nil
}

// Lease asks for the next pending shard range.
func (c *Client) Lease(ctx context.Context, worker string) (LeaseReply, error) {
	body, _ := json.Marshal(leaseRequest{Worker: worker})
	data, code, err := c.do(ctx, http.MethodPost, "/v1/lease", "application/json", body)
	if err != nil {
		return LeaseReply{}, err
	}
	if code != http.StatusOK {
		return LeaseReply{}, fmt.Errorf("dist: lease: status %d: %s", code, bytes.TrimSpace(data))
	}
	var reply leaseReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return LeaseReply{}, fmt.Errorf("dist: lease: %w", err)
	}
	switch reply.Status {
	case "done":
		return LeaseReply{Done: true}, nil
	case "wait":
		return LeaseReply{Retry: time.Duration(reply.RetryMS) * time.Millisecond}, nil
	case "lease":
		if reply.Lease == nil {
			return LeaseReply{}, fmt.Errorf("dist: lease: reply carries no lease")
		}
		return LeaseReply{Lease: reply.Lease}, nil
	}
	return LeaseReply{}, fmt.Errorf("dist: lease: unknown status %q", reply.Status)
}

// Heartbeat extends a lease's deadline; ErrLeaseLost means the lease
// expired and the range was (or will be) re-leased — abandon it.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	body, _ := json.Marshal(heartbeatRequest{LeaseID: leaseID})
	data, code, err := c.do(ctx, http.MethodPost, "/v1/heartbeat", "application/json", body)
	if err != nil {
		return err
	}
	switch code {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return fmt.Errorf("dist: heartbeat %s: %w", leaseID, ErrLeaseLost)
	}
	return fmt.Errorf("dist: heartbeat %s: status %d: %s", leaseID, code, bytes.TrimSpace(data))
}

// ShipJournal uploads a finished shard journal. ErrLeaseLost means the
// range was re-leased (or already completed by its new holder) — the
// upload was refused and the worker should move on.
func (c *Client) ShipJournal(ctx context.Context, leaseID string, journal []byte) error {
	data, code, err := c.do(ctx, http.MethodPut, "/v1/journal?lease="+leaseID, "application/octet-stream", journal)
	if err != nil {
		return err
	}
	switch code {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return fmt.Errorf("dist: ship journal %s: %w", leaseID, ErrLeaseLost)
	}
	return fmt.Errorf("dist: ship journal %s: status %d: %s", leaseID, code, bytes.TrimSpace(data))
}
