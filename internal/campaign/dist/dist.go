// Package dist distributes campaigns across machines on top of the
// journal substrate: a coordinator serves shard-range leases over
// HTTP, workers claim a lease, run the range through campaign.RunRange
// with a local checkpoint journal, and ship the finished journal back;
// the coordinator validates each shipment and assembles it into a
// standard checkpoint directory that campaign.Resume replays into a
// byte-identical single-machine result.
//
// The protocol is deliberately thin — four JSON/bytes endpoints:
//
//	GET  /v1/campaigns               campaign identities (label, size, hash, shards)
//	POST /v1/lease                   claim the next pending shard range
//	POST /v1/heartbeat               keep a lease alive
//	PUT  /v1/journal?lease=ID        ship a finished shard journal
//	GET  /v1/status                  coordinator counters
//
// Robustness model. A lease carries a TTL; workers heartbeat at TTL/3
// while crawling, and a worker silent past the TTL is presumed dead —
// its range returns to the pending queue and is re-leased to the next
// asker. Lease IDs fence: once a lease expires, its heartbeats and
// journal uploads are refused (HTTP 410), so a worker that was merely
// slow can never complete a range that has been re-leased out from
// under it. Shipped journals are validated frame by frame
// (campaign.CheckJournal: checksums intact, complete in-order coverage
// of exactly the leased range) before the atomic rename into the
// assembly directory, and the assembled directory carries the PR-4
// manifest identity guard (campaign.InitCheckpointDir), so a journal
// can never merge into — or later replay onto — the wrong campaign.
//
// Determinism. Visits are pure functions of the universe seed, so a
// range journal has identical bytes no matter which worker produced it
// or how often a range was re-leased; the merge replays records in
// global index order through the existing Resume path, making the
// assembled report byte-identical to an uninterrupted local run's.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Spec describes one distributable campaign: enough identity for a
// worker to verify it is crawling the same universe the coordinator is
// assembling (label + target count + campaign.HashTargets), plus the
// shard partitioning the coordinator leases out.
type Spec struct {
	Label       string `json:"label"`
	Targets     int    `json:"targets"`
	TargetsHash uint64 `json:"targets_hash"`
	Shards      int    `json:"shards"`
}

// Lease is one granted shard range: campaign identity, the global
// [Lo, Hi) target range to run as shard Shard of Shards, and the TTL
// the worker must heartbeat within.
type Lease struct {
	ID          string `json:"id"`
	Label       string `json:"label"`
	Shard       int    `json:"shard"`
	Shards      int    `json:"shards"`
	Lo          int    `json:"lo"`
	Hi          int    `json:"hi"`
	Targets     int    `json:"targets"`
	TargetsHash uint64 `json:"targets_hash"`
	TTLMillis   int64  `json:"ttl_ms"`
}

// TTL returns the lease's lifetime as a duration.
func (l Lease) TTL() time.Duration { return time.Duration(l.TTLMillis) * time.Millisecond }

// Status is a point-in-time snapshot of coordinator state.
type Status struct {
	Units   int `json:"units"`
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	// Expired counts leases revoked after missing their TTL; each
	// revocation put its shard range back in the pending queue.
	Expired int `json:"expired"`
}

// Wire messages.
type campaignsReply struct {
	TTLMillis int64  `json:"ttl_ms"`
	Campaigns []Spec `json:"campaigns"`
}

type leaseRequest struct {
	Worker string `json:"worker"`
}

type leaseReply struct {
	Status  string `json:"status"` // "lease", "wait" or "done"
	Lease   *Lease `json:"lease,omitempty"`
	RetryMS int64  `json:"retry_ms,omitempty"`
}

type heartbeatRequest struct {
	LeaseID string `json:"lease_id"`
}

// LeaseReply is a worker-facing lease response: either a granted
// Lease, a Done campaign, or neither (every range currently leased —
// retry after Retry).
type LeaseReply struct {
	Done  bool
	Retry time.Duration
	Lease *Lease
}

// ErrLeaseLost reports a heartbeat or journal upload refused because
// the lease expired and its range went back to the pending queue (the
// coordinator's 410) — the worker holding it must abandon the range.
var ErrLeaseLost = errors.New("dist: lease lost (expired and re-leased)")

// Client speaks the coordinator protocol, transparently retrying
// transient failures (network errors, 5xx) with bounded exponential
// backoff. Definitive answers — a lease, a 410 fence, a validation
// reject — are never retried.
type Client struct {
	// BaseURL locates the coordinator ("http://host:port").
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries bounds retries of transient failures per call
	// (default 4).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt and
	// capped at 2s (default 100ms).
	Backoff time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request with bounded-backoff retries of transient
// failures and returns the final response body and status code.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte) ([]byte, int, error) {
	maxRetries := c.MaxRetries
	if maxRetries <= 0 {
		maxRetries = 4
	}
	backoff := c.Backoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.httpClient().Do(req)
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode < 500 {
				return data, resp.StatusCode, nil
			}
			if rerr != nil {
				lastErr = fmt.Errorf("%s %s: read response: %w", method, path, rerr)
			} else {
				lastErr = fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(data))
			}
		} else {
			lastErr = err
		}
		if attempt >= maxRetries {
			return nil, 0, lastErr
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, 0, context.Cause(ctx)
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// Campaigns fetches the coordinator's campaign specs — the worker-side
// identity check before any lease is claimed.
func (c *Client) Campaigns(ctx context.Context) ([]Spec, error) {
	data, code, err := c.do(ctx, http.MethodGet, "/v1/campaigns", "", nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("dist: campaigns: status %d: %s", code, bytes.TrimSpace(data))
	}
	var reply campaignsReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return nil, fmt.Errorf("dist: campaigns: %w", err)
	}
	return reply.Campaigns, nil
}

// Lease asks for the next pending shard range.
func (c *Client) Lease(ctx context.Context, worker string) (LeaseReply, error) {
	body, _ := json.Marshal(leaseRequest{Worker: worker})
	data, code, err := c.do(ctx, http.MethodPost, "/v1/lease", "application/json", body)
	if err != nil {
		return LeaseReply{}, err
	}
	if code != http.StatusOK {
		return LeaseReply{}, fmt.Errorf("dist: lease: status %d: %s", code, bytes.TrimSpace(data))
	}
	var reply leaseReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return LeaseReply{}, fmt.Errorf("dist: lease: %w", err)
	}
	switch reply.Status {
	case "done":
		return LeaseReply{Done: true}, nil
	case "wait":
		return LeaseReply{Retry: time.Duration(reply.RetryMS) * time.Millisecond}, nil
	case "lease":
		if reply.Lease == nil {
			return LeaseReply{}, fmt.Errorf("dist: lease: reply carries no lease")
		}
		return LeaseReply{Lease: reply.Lease}, nil
	}
	return LeaseReply{}, fmt.Errorf("dist: lease: unknown status %q", reply.Status)
}

// Heartbeat extends a lease's deadline; ErrLeaseLost means the lease
// expired and the range was (or will be) re-leased — abandon it.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	body, _ := json.Marshal(heartbeatRequest{LeaseID: leaseID})
	data, code, err := c.do(ctx, http.MethodPost, "/v1/heartbeat", "application/json", body)
	if err != nil {
		return err
	}
	switch code {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return fmt.Errorf("dist: heartbeat %s: %w", leaseID, ErrLeaseLost)
	}
	return fmt.Errorf("dist: heartbeat %s: status %d: %s", leaseID, code, bytes.TrimSpace(data))
}

// ShipJournal uploads a finished shard journal. ErrLeaseLost means the
// range was re-leased (or already completed by its new holder) — the
// upload was refused and the worker should move on.
func (c *Client) ShipJournal(ctx context.Context, leaseID string, journal []byte) error {
	data, code, err := c.do(ctx, http.MethodPut, "/v1/journal?lease="+leaseID, "application/octet-stream", journal)
	if err != nil {
		return err
	}
	switch code {
	case http.StatusOK:
		return nil
	case http.StatusGone:
		return fmt.Errorf("dist: ship journal %s: %w", leaseID, ErrLeaseLost)
	}
	return fmt.Errorf("dist: ship journal %s: status %d: %s", leaseID, code, bytes.TrimSpace(data))
}
