package dist

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"cookiewalk/internal/xrand"
)

// The lease ledger is the coordinator's durable control plane: an
// append-only, checksummed record of every ledger state transition —
// coordinator start, lease granted, lease expired, stale lease fenced,
// range merged — living next to the assembled journals in the
// checkpoint directory. A coordinator killed mid-fleet replays the
// ledger on restart (see recoverLocked in coordinator.go): merged
// ranges are re-verified against their assembly files and stay done,
// every unmerged range returns to the pending queue, and the lease
// sequence continues where it left off so stale lease IDs from the
// previous incarnation can never collide with fresh grants — they fall
// through to the existing 410 fence and the workers holding them simply
// drop their ranges and lease again.
//
// File layout (Dir/ledger.cwl):
//
//	file  := magic line*
//	magic := "cwled1\n"
//	line  := hex16(fnv1a(payload)) " " payload "\n"
//
// where payload is one JSON-encoded ledgerEvent. The framing gives the
// same torn-tail guarantee as the visit journals: a crash at any byte
// leaves a prefix of fully checksummed lines, scanning stops at the
// first torn or corrupt line, and a reopening writer truncates that
// tail before appending. Events are fsynced as they are written — the
// ledger records control-plane transitions (per lease, per range), not
// per-visit data, so the sync cost is negligible next to a crawl.
//
// The ledger is advisory where it can be and authoritative only where
// it must: merge events name the ranges whose assembly files should
// verify, but recovery re-checks every candidate file with
// campaign.CheckJournal (and also probes files that have no merge
// event, covering a crash between the rename and the ledger append),
// so a lost or lying ledger line degrades to re-crawling a range, never
// to trusting a bad journal.

// ledgerName is the ledger's file name inside the assembly dir.
const ledgerName = "ledger.cwl"

// ledgerMagic identifies (and versions) ledger files.
const ledgerMagic = "cwled1\n"

// Ledger event kinds.
const (
	evStart  = "start"  // coordinator (re)started: incarnation + fleet identity
	evGrant  = "grant"  // lease granted: seq, lease ID, worker, range
	evExpire = "expire" // lease missed its TTL: range back to pending
	evFence  = "fence"  // request under a stale/unknown lease refused (410)
	evMerge  = "merge"  // shipped journal validated and renamed into place
)

// ledgerEvent is one ledger line. Shard/Lo/Hi deliberately lack
// omitempty: shard 0 and lo 0 are meaningful values.
type ledgerEvent struct {
	Ev     string `json:"ev"`
	Inc    int    `json:"inc,omitempty"`    // start: incarnation (1-based)
	Fleet  uint64 `json:"fleet,omitempty"`  // start: fleetHash of the spec set
	Seq    int    `json:"seq,omitempty"`    // grant: lease sequence number
	Lease  string `json:"lease,omitempty"`  // grant/expire/fence/merge
	Worker string `json:"worker,omitempty"` // grant
	Label  string `json:"label,omitempty"`  // grant/expire/merge
	Shard  int    `json:"shard"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
}

// fleetHash folds the spec set into one identity value, stored in every
// start event: a ledger must never be replayed by a coordinator
// configured for different campaigns (other labels, another universe,
// another shard partitioning) — that coordinator would re-queue ranges
// that do not exist or trust merges that cover the wrong targets.
func fleetHash(specs []Spec) uint64 {
	h := xrand.Hash64("cookiewalk-fleet-ledger")
	for _, s := range specs {
		h = xrand.Mix64(h, xrand.Hash64(s.Label))
		h = xrand.Mix64(h, uint64(s.Targets))
		h = xrand.Mix64(h, s.TargetsHash)
		h = xrand.Mix64(h, uint64(s.Shards))
	}
	return h
}

// ledger appends checksummed events to the on-disk log. All calls
// happen under the coordinator's mutex. The first append failure
// latches: the ledger goes dead (recorded in err) and the fleet keeps
// running without durability — a restart then recovers from the
// assembly files alone, which is slower (unrecorded merges re-verify
// as done only via the file probe) but never wrong.
type ledger struct {
	f   *os.File
	err error
}

// openLedger opens (or creates) the ledger at path and returns every
// valid event already recorded. An existing file is scanned first and
// truncated to its last valid line, so appends always extend a
// consistent prefix.
func openLedger(path string) (*ledger, []ledgerEvent, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, err
		}
		if _, err := f.WriteString(ledgerMagic); err != nil {
			f.Close()
			return nil, nil, err
		}
		return &ledger{f: f}, nil, nil
	case err != nil:
		return nil, nil, err
	}
	events, valid := scanLedger(data)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(int64(valid)); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	if valid == 0 {
		// The file existed but even the magic was torn: rewrite it.
		if _, err := f.WriteString(ledgerMagic); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return &ledger{f: f}, events, nil
}

// scanLedger parses ledger bytes, returning every valid event and the
// byte offset of the end of the last valid line (the truncation point
// for writers). Parsing stops at the first invalid line: a missing
// newline (torn tail), a malformed or mismatching checksum, or
// undecodable JSON.
func scanLedger(data []byte) (events []ledgerEvent, valid int) {
	if len(data) < len(ledgerMagic) || string(data[:len(ledgerMagic)]) != ledgerMagic {
		return nil, 0
	}
	off := len(ledgerMagic)
	valid = off
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			return events, valid // torn tail: no newline yet
		}
		line := data[off : off+nl]
		if len(line) < 18 || line[16] != ' ' {
			return events, valid
		}
		sum, err := hex.DecodeString(string(line[:16]))
		if err != nil {
			return events, valid
		}
		payload := line[17:]
		var want uint64
		for _, b := range sum {
			want = want<<8 | uint64(b)
		}
		if xrand.Hash64(string(payload)) != want {
			return events, valid
		}
		var ev ledgerEvent
		if err := json.Unmarshal(payload, &ev); err != nil {
			return events, valid
		}
		events = append(events, ev)
		off += nl + 1
		valid = off
	}
	return events, valid
}

// append frames, writes and fsyncs one event. After the first failure
// every later call returns the latched error without touching the file.
func (l *ledger) append(ev ledgerEvent) error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		l.err = errors.New("dist: ledger: closed")
		return l.err
	}
	payload, err := json.Marshal(ev)
	if err == nil {
		line := fmt.Sprintf("%016x %s\n", xrand.Hash64(string(payload)), payload)
		if _, werr := l.f.WriteString(line); werr != nil {
			err = werr
		} else if serr := l.f.Sync(); serr != nil {
			err = serr
		}
	}
	if err != nil {
		l.err = fmt.Errorf("dist: ledger: %w", err)
		return l.err
	}
	return nil
}

// close fsyncs and closes the ledger file. Safe to call after a
// latched failure (the close error is reported but state was already
// degraded).
func (l *ledger) close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	if l.err == nil && err != nil {
		l.err = err
	}
	return err
}
