package dist_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"cookiewalk/internal/campaign"
	"cookiewalk/internal/campaign/dist"
)

// TestClientRetryClassification is the table the fleet's survival
// depends on: transient failures (network errors, 5xx — what a
// coordinator crash or restart looks like) are retried and surface as
// transient; definitive refusals (401 auth, 410 fencing, 422
// validation) are returned after exactly one request, because no retry
// can change the answer.
func TestClientRetryClassification(t *testing.T) {
	newClient := func(url string) (*dist.Client, *atomic.Int64) {
		var hits atomic.Int64
		return &dist.Client{BaseURL: url, MaxRetries: 3, Backoff: time.Millisecond,
			Sleep: func(time.Duration) {}}, &hits
	}
	call := func(c *dist.Client, op string) error {
		ctx := context.Background()
		switch op {
		case "lease":
			_, err := c.Lease(ctx, "w")
			return err
		case "heartbeat":
			return c.Heartbeat(ctx, "L01-000001")
		case "ship":
			return c.ShipJournal(ctx, "L01-000001", []byte("payload"))
		}
		t.Fatalf("unknown op %q", op)
		return nil
	}

	tests := []struct {
		name      string
		op        string
		status    int // 0 = close the connection (network error)
		body      string
		wantHits  int64 // requests the server must see
		transient bool
		wantErr   error // errors.Is target, nil = only classify
	}{
		{name: "network error retries then transient", op: "lease", status: 0, wantHits: 4, transient: true},
		{name: "502 retries then transient", op: "lease", status: http.StatusBadGateway, wantHits: 4, transient: true},
		{name: "503 retries then transient", op: "heartbeat", status: http.StatusServiceUnavailable, wantHits: 4, transient: true},
		{name: "401 definitive no retry", op: "lease", status: http.StatusUnauthorized, wantHits: 1, wantErr: dist.ErrUnauthorized},
		{name: "410 heartbeat fence definitive", op: "heartbeat", status: http.StatusGone, wantHits: 1, wantErr: dist.ErrLeaseLost},
		{name: "410 ship fence definitive", op: "ship", status: http.StatusGone, wantHits: 1, wantErr: dist.ErrLeaseLost},
		{name: "422 validation reject definitive", op: "ship", status: http.StatusUnprocessableEntity, body: "journal rejected", wantHits: 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var hits *atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				hits.Add(1)
				if tc.status == 0 {
					if hj, ok := w.(http.Hijacker); ok {
						if conn, _, err := hj.Hijack(); err == nil {
							conn.Close()
						}
					}
					return
				}
				http.Error(w, tc.body, tc.status)
			}))
			defer srv.Close()
			var c *dist.Client
			c, hits = newClient(srv.URL)

			err := call(c, tc.op)
			if err == nil {
				t.Fatal("call succeeded, want failure")
			}
			if got := hits.Load(); got != tc.wantHits {
				t.Fatalf("server saw %d requests, want %d", got, tc.wantHits)
			}
			if dist.IsTransient(err) != tc.transient {
				t.Fatalf("IsTransient = %v, want %v (err: %v)", dist.IsTransient(err), tc.transient, err)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestClientPostRecoveryFencing covers the new 410 path: a lease ID
// minted by a dead incarnation is unknown to the recovered
// coordinator, so its heartbeats and uploads hit the fence exactly
// like an ordinary expiry — definitive, no retry.
func TestClientPostRecoveryFencing(t *testing.T) {
	targets := testTargets(20)
	dir := t.TempDir()
	spec := dist.Spec{Label: "camp alpha", Targets: len(targets),
		TargetsHash: campaign.HashTargets(targets), Shards: 2}

	co1 := mustCoordinator(t, dir, spec)
	srv := httptest.NewServer(co1.Handler())
	client := &dist.Client{BaseURL: srv.URL, MaxRetries: 1, Backoff: time.Millisecond,
		Sleep: func(time.Duration) {}}
	reply, err := client.Lease(context.Background(), "w1")
	if err != nil || reply.Lease == nil {
		t.Fatalf("lease: %+v, %v", reply, err)
	}
	stale := reply.Lease.ID
	srv.Close() // coordinator "crashes" holding one granted lease

	co2 := mustCoordinator(t, dir, spec)
	srv2 := httptest.NewServer(co2.Handler())
	defer srv2.Close()
	client.BaseURL = srv2.URL

	if err := client.Heartbeat(context.Background(), stale); !errors.Is(err, dist.ErrLeaseLost) {
		t.Fatalf("stale heartbeat after recovery: %v", err)
	}
	journal := rangeJournal(t, "camp alpha", targets, 0, 2)
	if err := client.ShipJournal(context.Background(), stale, journal); !errors.Is(err, dist.ErrLeaseLost) {
		t.Fatalf("stale ship after recovery: %v", err)
	}
	// The recovered coordinator leases the same range out fresh, with a
	// second-incarnation lease ID.
	reply, err = client.Lease(context.Background(), "w2")
	if err != nil || reply.Lease == nil {
		t.Fatalf("post-recovery lease: %+v, %v", reply, err)
	}
	if reply.Lease.ID == stale {
		t.Fatalf("recovered coordinator reissued stale lease ID %s", stale)
	}
	if err := client.ShipJournal(context.Background(), reply.Lease.ID, journal); err != nil {
		t.Fatalf("fresh ship after recovery: %v", err)
	}
}

// TestClientSeededBackoffSchedule is the thundering-herd regression
// test: with a fake sleeper, the retry schedule is fully reproducible
// from the seed, every delay is jittered into [base/2, base] of the
// doubling envelope, and two workers with different seeds do not march
// in lockstep.
func TestClientSeededBackoffSchedule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	schedule := func(seed uint64) []time.Duration {
		var delays []time.Duration
		c := &dist.Client{BaseURL: srv.URL, MaxRetries: 4, Backoff: 80 * time.Millisecond,
			Seed:  seed,
			Sleep: func(d time.Duration) { delays = append(delays, d) }}
		if _, err := c.Lease(context.Background(), "w"); !dist.IsTransient(err) {
			t.Fatalf("expected transient exhaustion, got %v", err)
		}
		return delays
	}

	s1, s1again, s2 := schedule(1), schedule(1), schedule(2)
	if len(s1) != 4 {
		t.Fatalf("4 retries should sleep 4 times, slept %d: %v", len(s1), s1)
	}
	// Deterministic: same seed, same schedule.
	for i := range s1 {
		if s1[i] != s1again[i] {
			t.Fatalf("sleep %d: %v then %v from the same seed", i, s1[i], s1again[i])
		}
	}
	// Jittered within the doubling envelope: attempt k's base is
	// min(80ms<<k, 2s), delay in [base/2, base].
	base := 80 * time.Millisecond
	for i, d := range s1 {
		if d < base/2 || d > base {
			t.Fatalf("sleep %d = %v outside [%v, %v]", i, d, base/2, base)
		}
		if base *= 2; base > 2*time.Second {
			base = 2 * time.Second
		}
	}
	// Decorrelated: different seeds must not produce an identical
	// 4-delay schedule.
	identical := true
	for i := range s1 {
		if s1[i] != s2[i] {
			identical = false
			break
		}
	}
	if identical {
		t.Fatalf("seeds 1 and 2 share the schedule %v — jitter is not seeded", s1)
	}
}
