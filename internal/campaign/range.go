package campaign

import (
	"context"
	"fmt"
)

// Distributed range execution — the engine-side half of the fleet
// protocol (internal/campaign/dist). A remote worker leases one shard
// of a larger campaign: the exact [lo, hi) target range Run would have
// given that shard under the same Config. It executes the range with
// RunRange and a local checkpoint, producing a shard journal whose
// records carry GLOBAL target indices in the standard framing, and
// ships that file to the coordinator. The coordinator assembles every
// shipped journal (plus a manifest, see InitCheckpointDir) into one
// checkpoint directory, and Resume replays it exactly as if a single
// machine had run — and been killed right after — the whole campaign:
// the delivered sequence, and therefore any deterministic sink's
// output, is byte-identical to a local run's.

// ShardRange returns shard s's half-open global target range under
// Run's partitioning of total targets into shards contiguous pieces —
// the ranges a coordinator leases out must be exactly the ranges a
// single-machine Run would execute.
func ShardRange(total, shards, s int) (lo, hi int) {
	return s * total / shards, (s + 1) * total / shards
}

// EffectiveShards returns the shard count Run would use for a campaign
// of n targets under this Config — the partitioning a coordinator must
// mirror when leasing shard ranges to remote workers.
func (c Config) EffectiveShards(n int) int { return c.shards(n) }

// RunRange executes visit over the contiguous global target range
// [lo, hi) as shard `shard` of `shards`, delivering results — global
// Index order, calling goroutine — into sink exactly like Run does for
// that shard. With cfg.Checkpoint set, deliveries journal into
// shard-<shard>.cwj under the checkpoint directory (fresh: any stale
// journals in the directory are wiped first), so independent RunRange
// calls in separate directories produce journals that assemble into
// one resumable campaign. Stats covers just this range.
//
// The error semantics match Run: non-nil on cancellation or on a
// checkpoint setup/write failure, with Stats valid either way.
func RunRange[T, R any](ctx context.Context, cfg Config, targets []T, shard, shards, lo, hi int,
	visit func(context.Context, T) (R, error), sink func(Result[R])) (Stats, error) {

	if shard < 0 || shards <= shard {
		return Stats{}, fmt.Errorf("campaign: shard %d of %d out of range", shard, shards)
	}
	if lo < 0 || hi > len(targets) || lo > hi {
		return Stats{}, fmt.Errorf("campaign: range [%d,%d) out of bounds for %d targets", lo, hi, len(targets))
	}
	var ck *checkpointState
	if cfg.Checkpoint != nil {
		var err error
		// The manifest records the WHOLE campaign's identity (label,
		// global target count, targets hash), not the range's: the
		// journal is one piece of that campaign.
		if ck, err = prepareCheckpoint(cfg, len(targets), false); err != nil {
			return Stats{}, err
		}
	}
	stats := Stats{Targets: hi - lo}
	meter := &Meter{}
	sh := runShard(ctx, cfg, targets, visit, sink, shard, shards, lo, hi, &stats, int64(hi-lo), meter, ck, nil)
	sh.Retries, sh.BreakerTrips, sh.BreakerDenials = meter.counts()
	stats.add(sh)
	if cfg.OnProgress != nil {
		cfg.OnProgress(Progress{
			Label: cfg.Label, Shard: shard + 1, Shards: shards,
			Done: stats.Done, Total: int64(hi - lo), Errors: stats.Errors,
			Retries: stats.Retries, BreakerTrips: stats.BreakerTrips,
			BreakerDenials: stats.BreakerDenials,
		})
	}
	if stats.Canceled > 0 || ctx.Err() != nil {
		if err := context.Cause(ctx); err != nil {
			return stats, err
		}
	}
	if ck != nil {
		if err := ck.firstErr(); err != nil {
			return stats, err
		}
	}
	return stats, nil
}
