package core_test

// This cross-package test pins the contract between the web farm's
// multilingual banner corpus and the detector: every language the farm
// can render must stay detectable and correctly classified. Breaking
// either side (adding a language without detector keywords, or
// trimming a keyword the farm relies on) fails here, not in a distant
// integration run.

import (
	"fmt"
	"testing"

	"cookiewalk/internal/core"
	"cookiewalk/internal/dom"
	"cookiewalk/internal/webfarm"
)

func bannerDoc(text, b1, b2 string) *dom.Node {
	return dom.Parse(fmt.Sprintf(`<html><body>
<div class="consent-layer" role="dialog" style="position:fixed;bottom:0">
  <p>%s</p><button id="b1">%s</button><button id="b2">%s</button>
</div></body></html>`, text, b1, b2))
}

func TestEveryFarmLanguageDetectable(t *testing.T) {
	for lang, strs := range webfarm.BannerTexts() {
		consentText, wallText := strs[0], strs[1]
		accept, reject, subscribe := strs[2], strs[3], strs[4]

		t.Run(lang+"/regular", func(t *testing.T) {
			det := core.Detect(bannerDoc(consentText, accept, reject))
			if det.Kind != core.KindRegular {
				t.Fatalf("regular banner classified %v (text %q)", det.Kind, consentText)
			}
			if det.AcceptButton == nil {
				t.Errorf("accept label %q unrecognized", accept)
			}
			if det.RejectButton == nil {
				t.Errorf("reject label %q unrecognized", reject)
			}
		})
		t.Run(lang+"/cookiewall", func(t *testing.T) {
			det := core.Detect(bannerDoc(wallText, accept, subscribe))
			if det.Kind != core.KindCookiewall {
				t.Fatalf("wall classified %v (text %q)", det.Kind, wallText)
			}
			if det.SubscribeButton == nil {
				t.Errorf("subscribe label %q unrecognized", subscribe)
			}
			if det.MonthlyEUR <= 0 {
				t.Errorf("price not extracted from %q", wallText)
			}
		})
	}
}
