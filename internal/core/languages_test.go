package core

import (
	"fmt"
	"testing"

	"cookiewalk/internal/dom"
)

// Per-language cookiewall texts matching the phrasing real sites (and
// the web farm) use. Each must classify as a cookiewall through the
// word corpus, the price combination, or both — pinning every language
// path of the §3 classifier independent of the farm.
var languageWalls = []struct {
	lang      string
	text      string
	accept    string
	subscribe string
	viaWords  bool // corpus word expected (else price-only)
}{
	{"de", "Mit Werbung kostenlos weiterlesen oder werbefrei im Abo für nur 2,99 € pro Monat. Wenn Sie akzeptieren, verarbeiten wir Ihre Daten mit Cookies.",
		"Alle akzeptieren", "Jetzt Abo abschließen", true},
	{"en", "Keep reading for free with advertising, or go ad-free for just $3.99 per month. Subscribe now. If you accept, we process your data using cookies.",
		"Accept all", "Subscribe now", true},
	{"it", "Continua a leggere gratis con la pubblicità oppure scegli l'abbonamento senza tracciamento per solo 1,99 € al mese. Se accetti, trattiamo i tuoi dati con i cookie.",
		"Accetta tutto", "Abbonati ora", true},
	{"fr", "Continuez à lire gratuitement avec la publicité ou devenez abonné sans suivi pour seulement 2,99 € par mois. Si vous acceptez, nous traitons vos données avec des cookies.",
		"Tout accepter", "S'abonner", true},
	{"es", "Siga leyendo gratis con publicidad o lea sin rastreo por solo 2,99 € al mes. Si acepta, procesamos sus datos con cookies.",
		"Aceptar todo", "Suscribirse ahora", false}, // price-only
	{"pt", "Continue lendo grátis com publicidade ou leia sem rastreamento por apenas 2,99 € por mês. Se você aceitar, processamos os seus dados com cookies.",
		"Aceitar tudo", "Assinar agora", false}, // price-only
	{"nl", "Lees gratis verder met advertenties of kies een abonnement zonder tracking voor slechts 2,99 € per maand. Als u accepteert, verwerken wij uw gegevens met cookies.",
		"Alles accepteren", "Abonneren", true},
	{"da", "Læs videre gratis med annoncer eller vælg et abonnement uden sporing for kun 34 kr pr. måned. Hvis du accepterer, behandler vi dine data med cookies.",
		"Accepter alle", "Abonner nu", true},
	{"sv", "Läs vidare gratis med annonser eller läs utan spårning för bara 34 kr per månad. Om du godkänner behandlar vi och våra partner dina uppgifter med cookies.",
		"Godkänn alla", "Prenumerera nu", false}, // price-only
}

func wallHTML(text, accept, subscribe string) string {
	return fmt.Sprintf(`<html><body>
<div class="consent-layer" role="dialog" style="position:fixed;top:20%%">
  <p>%s</p>
  <button id="acc">%s</button>
  <button id="sub">%s</button>
</div></body></html>`, text, accept, subscribe)
}

func TestAllLanguagesClassifyAsCookiewall(t *testing.T) {
	for _, c := range languageWalls {
		t.Run(c.lang, func(t *testing.T) {
			b := Detect(dom.Parse(wallHTML(c.text, c.accept, c.subscribe)))
			if b.Kind != KindCookiewall {
				t.Fatalf("kind = %v (text %q)", b.Kind, b.Text)
			}
			if c.viaWords && len(b.MatchedWords) == 0 {
				t.Errorf("no corpus words matched in %q", c.text)
			}
			if !c.viaWords && len(b.Prices) == 0 {
				t.Errorf("price-only language needs a detected price")
			}
			if b.AcceptButton == nil {
				t.Errorf("accept button %q not recognized", c.accept)
			}
			if b.SubscribeButton == nil {
				t.Errorf("subscribe button %q not recognized", c.subscribe)
			}
			if b.RejectButton != nil {
				t.Error("phantom reject button")
			}
			if b.MonthlyEUR < 1.5 || b.MonthlyEUR > 4.5 {
				t.Errorf("normalized price = %g", b.MonthlyEUR)
			}
		})
	}
}

// Regular banners in every language must NOT classify as cookiewalls.
var languageRegulars = map[string][2]string{
	"de": {"Wir und unsere Partner verwenden Cookies, um Inhalte zu personalisieren. Sie können Ihre Einwilligung jederzeit widerrufen.", "Alle akzeptieren|Ablehnen"},
	"en": {"We and our partners use cookies to personalise content and analyse traffic. You can withdraw your consent at any time.", "Accept all|Reject all"},
	"it": {"Noi e i nostri partner utilizziamo i cookie per personalizzare i contenuti. Puoi revocare il consenso in ogni momento.", "Accetta tutto|Rifiuta"},
	"fr": {"Nous et nos partenaires utilisons des cookies pour personnaliser les contenus. Vous pouvez retirer votre consentement.", "Tout accepter|Refuser"},
	"es": {"Nosotros y nuestros socios usamos cookies para personalizar el contenido. Puede retirar su consentimiento.", "Aceptar todo|Rechazar"},
	"pt": {"Nós e os nossos parceiros usamos cookies para personalizar o conteúdo. Você pode retirar o seu consentimento.", "Aceitar tudo|Recusar"},
	"nl": {"Wij en onze partners gebruiken cookies om inhoud te personaliseren. U kunt uw toestemming op elk moment intrekken.", "Alles accepteren|Weigeren"},
	"da": {"Vi og vores partnere bruger cookies til at tilpasse indholdet. Du kan til enhver tid trække dit samtykke tilbage.", "Accepter alle|Afvis"},
	"sv": {"Vi och våra partner använder cookies för att anpassa innehållet. Du kan när som helst återkalla ditt samtycke.", "Godkänn alla|Neka"},
	"af": {"Ons en ons vennote gebruik koekies om inhoud te verpersoonlik. Jy kan jou toestemming enige tyd terugtrek.", "Aanvaar alles|Weier"},
}

func TestAllLanguagesRegularNotMisclassified(t *testing.T) {
	for lang, pair := range languageRegulars {
		t.Run(lang, func(t *testing.T) {
			var accept, reject string
			for i, part := range []byte(pair[1]) {
				if part == '|' {
					accept, reject = pair[1][:i], pair[1][i+1:]
					break
				}
			}
			html := fmt.Sprintf(`<html><body>
<div class="cookie-banner" role="dialog" style="position:fixed;bottom:0">
  <p>%s</p><button id="a">%s</button><button id="r">%s</button>
</div></body></html>`, pair[0], accept, reject)
			b := Detect(dom.Parse(html))
			if b.Kind != KindRegular {
				t.Fatalf("kind = %v, words=%v prices=%v", b.Kind, b.MatchedWords, b.Prices)
			}
			if b.AcceptButton == nil || b.RejectButton == nil {
				t.Errorf("buttons not recognized: accept=%v reject=%v",
					b.AcceptButton != nil, b.RejectButton != nil)
			}
		})
	}
}
