package core

import (
	"strings"

	"cookiewalk/internal/currency"
	"cookiewalk/internal/dom"
)

// Source says where in the page the banner was found — the §3
// embedding statistic (76 shadow DOM / 132 iframe / 72 main DOM).
type Source int

const (
	// SourceNone means no banner.
	SourceNone Source = iota
	// SourceMainDOM is a banner in the top-level document.
	SourceMainDOM
	// SourceIFrame is a banner inside an iframe document.
	SourceIFrame
	// SourceShadowDOM is a banner inside a shadow root (open or closed).
	SourceShadowDOM
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SourceMainDOM:
		return "main-dom"
	case SourceIFrame:
		return "iframe"
	case SourceShadowDOM:
		return "shadow-dom"
	}
	return "none"
}

// Kind is the banner classification.
type Kind int

const (
	// KindNone: no banner detected.
	KindNone Kind = iota
	// KindRegular: a standard cookie banner.
	KindRegular
	// KindCookiewall: an accept-or-pay banner (§3 classification).
	KindCookiewall
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRegular:
		return "regular"
	case KindCookiewall:
		return "cookiewall"
	}
	return "none"
}

// Banner is a detected consent UI with everything the measurement
// pipeline needs.
type Banner struct {
	Kind   Kind
	Source Source
	// ShadowMode is set when Source is SourceShadowDOM.
	ShadowMode dom.ShadowMode
	// Element is the banner's root node in the ORIGINAL tree (main
	// document, frame document, or shadow root) — interactions use it.
	Element *dom.Node
	// Text is the normalized banner text used for classification.
	Text string
	// Score is the detection score (diagnostics).
	Score int

	// Buttons located by the multilingual word lists; nil when absent.
	AcceptButton    *dom.Node
	RejectButton    *dom.Node
	SubscribeButton *dom.Node

	// MatchedWords are the §3 subscription-corpus hits.
	MatchedWords []string
	// Prices are the currency-amount combinations found in the text.
	Prices []currency.Price
	// MonthlyEUR is the cheapest detected price normalized to EUR per
	// month (0 when no price was found).
	MonthlyEUR float64
}

// HasBanner reports whether any banner was detected.
func (b *Banner) HasBanner() bool { return b != nil && b.Kind != KindNone }

// candidate is an element under consideration during detection.
type candidate struct {
	node   *dom.Node
	source Source
	mode   dom.ShadowMode
	score  int
	size   int
}

// Options disable parts of the detection pipeline for ablation
// studies: how much of the cookiewall landscape would a tool miss
// without the shadow-DOM workaround or without iframe traversal?
// (Unmodified BannerClick lacked both capabilities; the paper's §3
// extension added them.)
type Options struct {
	// SkipShadow disables the shadow-DOM clone workaround.
	SkipShadow bool
	// SkipFrames disables iframe-document traversal.
	SkipFrames bool
}

// Detect analyzes a loaded document (with frames and shadow roots
// attached by the browser) and returns the detected banner, or a
// Banner with KindNone when the page shows no consent UI.
func Detect(doc *dom.Node) *Banner { return DetectWith(doc, Options{}) }

// DetectWith is Detect with ablation options.
func DetectWith(doc *dom.Node, opts Options) *Banner {
	var cands []candidate

	// 1. Main document.
	collectCandidates(doc, SourceMainDOM, "", &cands)

	// 2. Shadow roots — the BannerClick workaround: clone the shadow
	// content, search the clone with ordinary selectors, then map the
	// hit back to the original node for interaction.
	if !opts.SkipShadow {
		for _, sr := range doc.ShadowRoots() {
			clone, backMap := sr.Root.CloneWithMap()
			var shadowCands []candidate
			collectCandidates(clone, SourceShadowDOM, sr.Mode, &shadowCands)
			for _, c := range shadowCands {
				orig := backMap[c.node]
				if orig == nil {
					continue
				}
				c.node = orig
				cands = append(cands, c)
			}
		}
	}

	// 3. iframe documents (including frames hosted in shadow roots).
	if !opts.SkipFrames {
		for _, fd := range doc.FrameDocs() {
			collectCandidates(fd, SourceIFrame, "", &cands)
			if opts.SkipShadow {
				continue
			}
			// Nested shadow roots inside frame documents.
			for _, sr := range fd.ShadowRoots() {
				clone, backMap := sr.Root.CloneWithMap()
				var shadowCands []candidate
				collectCandidates(clone, SourceShadowDOM, sr.Mode, &shadowCands)
				for _, c := range shadowCands {
					if orig := backMap[c.node]; orig != nil {
						c.node = orig
						cands = append(cands, c)
					}
				}
			}
		}
	}

	if len(cands) == 0 {
		return &Banner{Kind: KindNone}
	}

	best := cands[0]
	for _, c := range cands[1:] {
		if c.score > best.score || (c.score == best.score && c.size < best.size) {
			best = c
		}
	}
	return buildBanner(best)
}

// buttonSel finds interactive elements inside a banner.
var buttonSel = dom.MustCompileSelector("button, a, input[type=button], input[type=submit]")

// collectCandidates scans one tree for overlay elements whose text
// contains consent keywords.
func collectCandidates(root *dom.Node, source Source, mode dom.ShadowMode, out *[]candidate) {
	root.Walk(func(n *dom.Node) bool {
		if n.Type != dom.ElementNode || n.Tag == "body" || n.Tag == "html" {
			return true
		}
		if !n.IsOverlay() || !n.IsVisible() {
			return true
		}
		text := strings.ToLower(n.Text())
		hits := countKeywordHits(text)
		if hits == 0 {
			return true
		}
		score := hits * 2
		buttons := n.QueryAll(buttonSel)
		if len(buttons) > 0 {
			score += 3
		}
		if _, ok := n.Attr("role"); ok {
			score++
		}
		size := 0
		n.Walk(func(*dom.Node) bool { size++; return true })
		*out = append(*out, candidate{node: n, source: source, mode: mode, score: score, size: size})
		return true
	})
}

// buildBanner classifies the winning candidate and locates its buttons.
func buildBanner(c candidate) *Banner {
	text := dom.NormalizeSpace(c.node.DeepText())
	b := &Banner{
		Source:     c.source,
		ShadowMode: c.mode,
		Element:    c.node,
		Text:       text,
		Score:      c.score,
	}
	lower := strings.ToLower(text)

	// Buttons.
	for _, btn := range c.node.QueryAll(buttonSel) {
		label := strings.ToLower(dom.NormalizeSpace(btn.Text()))
		if label == "" {
			continue
		}
		switch {
		case b.AcceptButton == nil && containsAnyWord(label, acceptWords):
			b.AcceptButton = btn
		case b.RejectButton == nil && containsAnyWord(label, rejectWords):
			b.RejectButton = btn
		case b.SubscribeButton == nil && containsAnyWord(label, subscribeWords):
			b.SubscribeButton = btn
		}
	}

	// §3 classification: subscription words OR currency combinations.
	b.MatchedWords = matchCorpusWords(lower)
	b.Prices = currency.FindPrices(text)
	if m, ok := currency.CheapestMonthly(b.Prices); ok {
		b.MonthlyEUR = m
	}
	if len(b.MatchedWords) > 0 || len(b.Prices) > 0 {
		b.Kind = KindCookiewall
	} else {
		b.Kind = KindRegular
	}
	return b
}
