// Package core implements the paper's primary contribution: automated
// detection of cookie banners and classification of cookiewalls
// (accept-or-pay banners), the heavily-modified-BannerClick pipeline of
// §3.
//
// Detection walks the page the way the paper's tool does:
//
//  1. candidate overlay elements are collected from the main DOM, from
//     every loaded iframe document, and from every shadow root — the
//     latter via the paper's workaround: clone the shadow children,
//     search the clone with ordinary selectors, then map hits back to
//     the original shadow nodes (CSS cannot cross shadow boundaries);
//  2. candidates are scored by consent-keyword density, the presence of
//     buttons, and overlay markers; the best-scoring, innermost
//     candidate wins;
//  3. the winner's text is classified: a banner whose text contains a
//     subscription corpus word (abo, abonnent, abbonamento, abonne,
//     abonné, ad-free, subscribe) or a currency-amount combination
//     ("$3.99", "3.99 $", …) is a cookiewall; otherwise it is a
//     regular banner;
//  4. accept / reject / subscribe buttons are located by multilingual
//     word lists for interaction.
package core

import "strings"

// bannerKeywords flag an overlay as a consent UI. They cover the
// languages of the study's sites; one hit is enough for candidacy,
// density raises the score.
var bannerKeywords = []string{
	// Universal.
	"cookie", "cookies", "consent", "gdpr", "tracking",
	// German.
	"einwilligung", "zustimmen", "datenschutz", "verarbeiten", "werbung",
	// English.
	"privacy", "personalise", "personalize", "advertising",
	// Italian.
	"trattamento", "pubblicità", "consenso",
	// Swedish / Danish.
	"samtycke", "samtykke", "annonser", "annoncer", "spårning", "sporing",
	// French.
	"consentement", "publicité", "traitement",
	// Spanish / Portuguese.
	"privacidad", "privacidade", "publicidad", "publicidade",
	"rastreo", "rastreamento", "socios", "parceiros",
	// Dutch / Afrikaans.
	"toestemming", "advertenties", "advertensies", "koekies",
}

// acceptWords label consent-granting buttons (BannerClick's accept
// interaction, 99% accuracy in the original paper).
var acceptWords = []string{
	"accept all", "accept", "agree", "allow all", "got it",
	"alle akzeptieren", "akzeptieren", "zustimmen", "einverstanden",
	"accetta", "accetto", "consenti",
	"accepter", "j'accepte", "tout accepter",
	"aceptar", "aceitar",
	"godkänn", "acceptera", "tillad",
	"accepteren", "aanvaar",
}

// rejectWords label consent-refusing buttons. Cookiewalls, by
// definition, have none.
var rejectWords = []string{
	"reject all", "reject", "decline", "refuse", "deny",
	"ablehnen", "alle ablehnen", "nur notwendige",
	"rifiuta", "refuser", "rechazar", "recusar",
	"neka", "avvisa", "afvis", "weigeren", "weier",
}

// subscribeWords label the pay option of a cookiewall.
var subscribeWords = []string{
	"subscribe", "subscription",
	"abo", "abonnieren", "abonnement",
	"abbonati", "abbonamento",
	"s'abonner", "abonner", "abonne",
	"suscribirse", "suscripción", "assinar",
	"prenumerera", "abonneren", "teken nou in",
	"werbefrei", "ad-free", "pur", "zahlen", "kaufen",
}

// cookiewallCorpus is the paper's exact §3 word list for classifying a
// banner as a cookiewall: "(1) words related to subscriptions (i.e.,
// abo, abonnent, abbonamento, abonne, abonné, ad-free and subscribe)".
// Currency-amount combinations are part (2), handled by package
// currency.
var cookiewallCorpus = []string{
	"abo", "abonnent", "abbonamento", "abonne", "abonné", "ad-free", "subscribe",
}

// containsAnyWord reports whether lowercased text contains any of the
// phrases (substring match for multi-word phrases, which is how button
// labels are matched).
func containsAnyWord(text string, words []string) bool {
	for _, w := range words {
		if strings.Contains(text, w) {
			return true
		}
	}
	return false
}

// countKeywordHits counts distinct banner keywords present in text.
func countKeywordHits(text string) int {
	n := 0
	for _, w := range bannerKeywords {
		if strings.Contains(text, w) {
			n++
		}
	}
	return n
}

// matchCorpusWords returns the subscription-corpus words found in
// text using token matching: short words (≤4 runes, e.g. "abo") must
// match a whole token; longer words match as token prefixes so that
// "abonne" covers "abonnement" and "abbonamento" covers its inflected
// forms. This mirrors the word search the paper performs with
// BeautifulSoup over banner text.
func matchCorpusWords(text string) []string {
	tokens := tokenizeKeepHyphen(text)
	var found []string
	for _, w := range cookiewallCorpus {
		short := len([]rune(w)) <= 4
		for _, tok := range tokens {
			if short && tok == w {
				found = append(found, w)
				break
			}
			if !short && strings.HasPrefix(tok, w) {
				found = append(found, w)
				break
			}
		}
	}
	return found
}

func tokenizeKeepHyphen(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		if r == '-' {
			return false
		}
		return !isLetterRune(r)
	})
}

func isLetterRune(r rune) bool {
	return r == 'ß' || r == 'é' || r == 'è' || r == 'ä' || r == 'ö' ||
		r == 'ü' || r == 'å' || r == 'ã' || r == 'ç' || r == 'ñ' ||
		(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
		(r >= 'À' && r <= 'ÿ')
}
