package core

import (
	"strings"
	"testing"

	"cookiewalk/internal/dom"
)

const regularBannerHTML = `
<html><body>
<main><p>Article about sports and more sports.</p></main>
<div id="cmp-banner" class="cookie-banner" role="dialog" style="position:fixed;bottom:0">
  <p>We and our partners use cookies to personalise content. You can withdraw your consent at any time.</p>
  <button id="a">Accept all</button>
  <button id="r">Reject all</button>
</div>
</body></html>`

const cookiewallHTML = `
<html><body>
<main><p>Nachrichten des Tages.</p></main>
<div id="cw-banner" class="cw-overlay" role="dialog" aria-modal="true" style="position:fixed;top:20%">
  <p>Mit Werbung kostenlos weiterlesen oder werbefrei im Abo für nur 2,99 € pro Monat.
     Wenn Sie akzeptieren, verarbeiten wir Ihre Daten mit Cookies.</p>
  <button id="a">Alle akzeptieren</button>
  <button id="s">Jetzt Abo abschließen</button>
</div>
</body></html>`

func TestDetectRegularBanner(t *testing.T) {
	b := Detect(dom.Parse(regularBannerHTML))
	if b.Kind != KindRegular {
		t.Fatalf("kind = %v (text %q)", b.Kind, b.Text)
	}
	if b.Source != SourceMainDOM {
		t.Fatalf("source = %v", b.Source)
	}
	if b.AcceptButton == nil || b.AcceptButton.ID() != "a" {
		t.Fatal("accept button not found")
	}
	if b.RejectButton == nil || b.RejectButton.ID() != "r" {
		t.Fatal("reject button not found")
	}
	if len(b.Prices) != 0 {
		t.Fatalf("prices on a regular banner: %v", b.Prices)
	}
}

func TestDetectCookiewall(t *testing.T) {
	b := Detect(dom.Parse(cookiewallHTML))
	if b.Kind != KindCookiewall {
		t.Fatalf("kind = %v", b.Kind)
	}
	if b.RejectButton != nil {
		t.Fatal("cookiewall must have no reject button")
	}
	if b.SubscribeButton == nil || b.SubscribeButton.ID() != "s" {
		t.Fatal("subscribe button not found")
	}
	if len(b.MatchedWords) == 0 {
		t.Fatal("corpus words not matched (Abo)")
	}
	if len(b.Prices) != 1 || b.Prices[0].Code != "EUR" {
		t.Fatalf("prices = %v", b.Prices)
	}
	if b.MonthlyEUR < 2.98 || b.MonthlyEUR > 3.0 {
		t.Fatalf("monthly = %g", b.MonthlyEUR)
	}
}

func TestDetectNoBanner(t *testing.T) {
	b := Detect(dom.Parse(`<html><body><main><p>Just an article about cooking.</p></main></body></html>`))
	if b.Kind != KindNone || b.HasBanner() {
		t.Fatalf("kind = %v", b.Kind)
	}
}

func TestDetectIgnoresNonOverlayKeywords(t *testing.T) {
	// A footer mentioning cookies is not a banner.
	b := Detect(dom.Parse(`<html><body><main>text</main><footer><a href="/privacy">Privacy and cookie policy</a></footer></body></html>`))
	if b.Kind != KindNone {
		t.Fatalf("footer misdetected as %v", b.Kind)
	}
}

func TestDetectShadowDOMWorkaround(t *testing.T) {
	html := `<html><body><div id="host"><template shadowrootmode="open">` +
		`<div id="cw" class="consent-layer" role="dialog" style="position:fixed;top:10%">` +
		`<p>Werbefrei im Abo für 3,99 € pro Monat oder Cookies akzeptieren.</p>` +
		`<button id="acc">Akzeptieren</button><button id="sub">Abonnieren</button>` +
		`</div></template></div></body></html>`
	doc := dom.Parse(html)
	b := Detect(doc)
	if b.Kind != KindCookiewall {
		t.Fatalf("kind = %v", b.Kind)
	}
	if b.Source != SourceShadowDOM || b.ShadowMode != dom.ShadowOpen {
		t.Fatalf("source = %v mode = %v", b.Source, b.ShadowMode)
	}
	// The element must be the ORIGINAL node inside the shadow root, not
	// the search clone: mutating it must be visible via the host.
	host := doc.ByID("host")
	orig := host.Shadow.Root.ByID("cw")
	if b.Element != orig {
		t.Fatal("detection returned a clone, not the original shadow node")
	}
	if b.AcceptButton == nil || b.AcceptButton != host.Shadow.Root.ByID("acc") {
		t.Fatal("accept button is not the original shadow node")
	}
}

func TestDetectClosedShadow(t *testing.T) {
	html := `<html><body><div id="host"><template shadowrootmode="closed">` +
		`<div class="cmp-container" role="dialog"><p>Cookies und Werbung: bitte zustimmen.</p>` +
		`<button>Zustimmen</button><button>Ablehnen</button></div></template></div></body></html>`
	b := Detect(dom.Parse(html))
	if b.Kind != KindRegular || b.ShadowMode != dom.ShadowClosed {
		t.Fatalf("kind=%v mode=%v", b.Kind, b.ShadowMode)
	}
}

func TestDetectIFrameBanner(t *testing.T) {
	doc := dom.Parse(`<html><body><iframe id="f" src="https://cmp.example/frame" style="position:fixed;top:0"></iframe></body></html>`)
	frame := dom.Parse(`<html><body><div id="cw" class="consent-layer" role="dialog" style="position:fixed;top:0">` +
		`<p>Keep reading with advertising or subscribe ad-free for $3.99 per month. We use cookies.</p>` +
		`<button id="a">Accept all</button><button id="s">Subscribe now</button></div></body></html>`)
	doc.ByID("f").FrameDoc = frame
	b := Detect(doc)
	if b.Kind != KindCookiewall || b.Source != SourceIFrame {
		t.Fatalf("kind=%v source=%v", b.Kind, b.Source)
	}
	if b.Element != frame.ByID("cw") {
		t.Fatal("element is not the frame-document node")
	}
	wantWords := map[string]bool{"ad-free": true, "subscribe": true}
	for _, w := range b.MatchedWords {
		delete(wantWords, w)
	}
	if len(wantWords) != 0 {
		t.Fatalf("missing corpus words: %v (got %v)", wantWords, b.MatchedWords)
	}
}

func TestDetectPrefersInnermostCandidate(t *testing.T) {
	// A banner nested in an overlay wrapper: the inner, smaller element
	// with the same evidence should win.
	html := `<html><body><div id="outer" class="modal" style="position:fixed;top:0">
	<div id="inner" class="cookie-banner" role="dialog" style="position:fixed;bottom:0">
	<p>We use cookies for advertising and consent management.</p>
	<button>Accept</button></div></div></body></html>`
	b := Detect(dom.Parse(html))
	if b.Element.ID() != "inner" {
		t.Fatalf("picked %q", b.Element.ID())
	}
}

func TestDetectInvisibleBannerIgnored(t *testing.T) {
	html := `<html><body><div class="cookie-banner" role="dialog" style="display:none">
	<p>We use cookies.</p><button>Accept</button></div></body></html>`
	if b := Detect(dom.Parse(html)); b.Kind != KindNone {
		t.Fatalf("hidden banner detected: %v", b.Kind)
	}
}

func TestCorpusWordMatching(t *testing.T) {
	cases := map[string][]string{
		"jetzt im abo lesen":           {"abo"},
		"für abonnenten kostenlos":     {"abonnent", "abonne"}, // both prefixes hit
		"scegli l'abbonamento":         {"abbonamento"},
		"devenez abonné sans pub":      {"abonné"},
		"kies een abonnement":          {"abonne"},
		"enjoy ad-free reading":        {"ad-free"},
		"subscribe today":              {"subscribe"},
		"about cookies and labor laws": nil, // "abo" must not match inside words
		"die saboteure":                nil,
		"nur mit werbung weiterlesen":  nil,
	}
	for text, want := range cases {
		got := matchCorpusWords(text)
		if len(got) != len(want) {
			t.Errorf("matchCorpusWords(%q) = %v, want %v", text, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("matchCorpusWords(%q) = %v, want %v", text, got, want)
			}
		}
	}
}

func TestDecoyStyleBannerIsFalsePositive(t *testing.T) {
	// A regular banner advertising a priced newsletter — the §3 decoy —
	// must be (mis)classified as a cookiewall, reproducing the paper's
	// 98.2% precision mechanism.
	html := `<html><body><div class="cookie-banner" role="dialog" style="position:fixed;bottom:0">
	<p>Wir verwenden Cookies. PS: Unser Newsletter im Abo kostet nur 1,99 € im Monat!</p>
	<button>Alle akzeptieren</button><button>Ablehnen</button></div></body></html>`
	b := Detect(dom.Parse(html))
	if b.Kind != KindCookiewall {
		t.Fatalf("decoy classified as %v — precision experiment broken", b.Kind)
	}
	if b.RejectButton == nil {
		t.Fatal("decoy must still expose its reject button (ground-truth giveaway)")
	}
}

func TestSourceAndKindStrings(t *testing.T) {
	if SourceShadowDOM.String() != "shadow-dom" || KindCookiewall.String() != "cookiewall" ||
		SourceNone.String() != "none" || KindNone.String() != "none" ||
		SourceMainDOM.String() != "main-dom" || SourceIFrame.String() != "iframe" ||
		KindRegular.String() != "regular" {
		t.Fatal("String() methods wrong")
	}
}

func TestDetectTextIsNormalized(t *testing.T) {
	html := "<html><body><div class=\"cookie-banner\" role=\"dialog\" style=\"position:fixed;bottom:0\"><p>We   use\n\tcookies today.</p><button>Accept</button></div></body></html>"
	b := Detect(dom.Parse(html))
	if strings.Contains(b.Text, "\n") || strings.Contains(b.Text, " ") {
		t.Fatalf("text not normalized: %q", b.Text)
	}
}
