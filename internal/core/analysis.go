package core

// Analysis is the vantage-point-independent outcome of analyzing one
// fully composed page: the banner detection verdict, the §3
// classification evidence, the language/category measurements and the
// §4.5 anti-adblock quirks. Every field is a pure function of page
// CONTENT — nothing here depends on which vantage point, repetition or
// worker produced the page — which is what makes Analysis values
// memoizable by content fingerprint across an eight-vantage-point
// crawl.
//
// Cached Analysis values are shared between visits, so they must be
// treated as immutable: MatchedWords is frozen at construction (exact
// length, never appended to or reordered by consumers).
type Analysis struct {
	Kind       Kind
	Source     Source
	ShadowMode string
	HasAccept  bool
	HasReject  bool
	HasSub     bool

	// MatchedWords are the §3 subscription-corpus hits. Frozen: shared
	// by every visit that resolves to the same page content.
	MatchedWords []string
	PriceCount   int
	MonthlyEUR   float64

	// Language and Category are measured from page text (the CLD3 and
	// FortiGuard substitutes).
	Language string
	Category string

	// AdblockPlea and ScrollLocked are the §4.5 quirks. They derive
	// from which sentinel URLs the blocker suppressed during page
	// composition, which the fingerprint captures via the blocker
	// configuration.
	AdblockPlea  bool
	ScrollLocked bool
}
