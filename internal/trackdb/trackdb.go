// Package trackdb embeds the tracking-domain blocklist used to classify
// tracking cookies, mirroring the role of the justdomains DOMAIN-ONLY
// lists in the paper (§4.3): "If the cookie domain matches one of the
// domains in the justdomains list, we classify it as a tracking cookie."
//
// The list contains (a) a handful of real-world tracker domains so the
// matching semantics are exercised against realistic entries, and (b)
// the synthetic tracker domains that the web farm's pages embed. The
// farm also uses third-party domains that are NOT listed (CDNs, widget
// hosts), so third-party and tracking counts differ, as in the paper.
package trackdb

import (
	"sort"
	"strings"
	"sync"

	"cookiewalk/internal/publicsuffix"
)

// realWorld are authentic tracker eTLD+1s included for fidelity of the
// list format; the synthetic farm never contacts them.
var realWorld = []string{
	"doubleclick.net",
	"adnxs.com",
	"criteo.com",
	"scorecardresearch.com",
	"quantserve.com",
	"rubiconproject.com",
	"pubmatic.com",
	"taboola.com",
	"outbrain.com",
	"hotjar.com",
}

// syntheticTrackers are the tracker domains the web farm embeds on
// pages after consent. All live under the reserved .example TLD.
var syntheticTrackers = []string{
	"trackpix1.example", "trackpix2.example", "trackpix3.example",
	"adsync1.example", "adsync2.example", "adsync3.example",
	"behaviourads.example", "retargetly.example", "audiencegrid.example",
	"clickstreamer.example", "profilebeam.example", "datavacuum.example",
	"pixelbarn.example", "cookiemonger.example", "surveilly.example",
	"admetricspro.example", "bidexchange.example", "impressionlog.example",
	"userfingerprint.example", "crossdevice.example", "heatmapify.example",
	"sessionspy.example", "conversionpix.example", "remarketer.example",
	"adfunnel.example", "trafficshare.example", "viewabilitynet.example",
	"programmaticx.example", "rtbcluster.example", "tagmanagerx.example",
	"syncpixel.example", "idgraphr.example", "attributionhub.example",
	"panelmetrics.example", "scrolldepth.example", "engagementlog.example",
	"popunderads.example", "nativeadsrv.example", "videopixel.example",
	"geobeacon.example",
}

// benignThirdParty are third-party domains embedded by pages that are
// NOT on the blocklist: content CDNs, fonts, widgets. Cookies from
// these count as third-party but never as tracking.
var benignThirdParty = []string{
	"cdnassets.example", "staticfarm.example", "fontlibrary.example",
	"imagecache.example", "videohost.example", "commentwidget.example",
	"weatherwidget.example", "mapembed.example", "searchbox.example",
	"newsletterbox.example", "paymentsafe.example", "captchaserv.example",
}

var (
	once  sync.Once
	index map[string]bool
)

func buildIndex() {
	index = make(map[string]bool, len(realWorld)+len(syntheticTrackers))
	for _, d := range realWorld {
		index[d] = true
	}
	for _, d := range syntheticTrackers {
		index[d] = true
	}
}

// IsTracking reports whether domain (or the registrable domain it
// belongs to) is on the blocklist. Subdomains of listed domains match,
// exactly like justdomains list consumers behave.
func IsTracking(domain string) bool {
	once.Do(buildIndex)
	d := strings.ToLower(strings.TrimSuffix(strings.TrimSpace(domain), "."))
	if d == "" {
		return false
	}
	if index[d] {
		return true
	}
	if e, err := publicsuffix.ETLDPlusOne(d); err == nil && index[e] {
		return true
	}
	return false
}

// Domains returns the full blocklist, sorted.
func Domains() []string {
	once.Do(buildIndex)
	out := make([]string, 0, len(index))
	for d := range index {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// TrackerPool returns the synthetic tracker domains for farm page
// generation (all blocklisted).
func TrackerPool() []string {
	out := make([]string, len(syntheticTrackers))
	copy(out, syntheticTrackers)
	return out
}

// BenignPool returns the non-blocklisted third-party domains for farm
// page generation.
func BenignPool() []string {
	out := make([]string, len(benignThirdParty))
	copy(out, benignThirdParty)
	return out
}
