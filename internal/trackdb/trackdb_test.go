package trackdb

import (
	"testing"
)

func TestIsTrackingExact(t *testing.T) {
	if !IsTracking("doubleclick.net") {
		t.Fatal("listed domain not matched")
	}
	if !IsTracking("trackpix1.example") {
		t.Fatal("synthetic tracker not matched")
	}
}

func TestIsTrackingSubdomain(t *testing.T) {
	if !IsTracking("sync.eu.doubleclick.net") {
		t.Fatal("subdomain of listed domain must match")
	}
	if !IsTracking("pixel.trackpix2.example") {
		t.Fatal("subdomain of synthetic tracker must match")
	}
}

func TestIsTrackingNegative(t *testing.T) {
	for _, d := range []string{
		"spiegel.de", "cdnassets.example", "fontlibrary.example",
		"notdoubleclick.net.evil.de", "", "de",
	} {
		if IsTracking(d) {
			t.Errorf("IsTracking(%q) = true", d)
		}
	}
}

func TestIsTrackingNormalization(t *testing.T) {
	if !IsTracking("  TRACKPIX1.EXAMPLE. ") {
		t.Fatal("normalization failed")
	}
}

func TestPoolsDisjointFromBenign(t *testing.T) {
	benign := map[string]bool{}
	for _, d := range BenignPool() {
		benign[d] = true
	}
	for _, d := range TrackerPool() {
		if benign[d] {
			t.Fatalf("%s in both pools", d)
		}
		if !IsTracking(d) {
			t.Fatalf("tracker pool domain %s not blocklisted", d)
		}
	}
	for d := range benign {
		if IsTracking(d) {
			t.Fatalf("benign domain %s is blocklisted", d)
		}
	}
}

func TestDomainsSortedAndComplete(t *testing.T) {
	ds := Domains()
	if len(ds) < len(TrackerPool()) {
		t.Fatal("blocklist smaller than tracker pool")
	}
	for i := 1; i < len(ds); i++ {
		if ds[i-1] >= ds[i] {
			t.Fatal("Domains not sorted/deduped")
		}
	}
}

func TestPoolsAreCopies(t *testing.T) {
	p := TrackerPool()
	p[0] = "mutated"
	if TrackerPool()[0] == "mutated" {
		t.Fatal("TrackerPool leaks internal slice")
	}
}
