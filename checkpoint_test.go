package cookiewalk_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"cookiewalk"
	"cookiewalk/internal/campaign"
	"cookiewalk/internal/vantage"
	"cookiewalk/internal/xrand"
)

// interruptCrawl starts a checkpointed landscape crawl with cfg and
// cancels it once the campaign labeled killLabel has delivered
// killAfter visits — the in-process stand-in for an OOM kill or
// preemption (the journal state it leaves behind is the same: a valid
// record prefix, which the torn-tail tests in internal/campaign cover
// at the byte level). It returns how many visits were delivered in
// total before the crawl stopped.
func interruptCrawl(t *testing.T, cfg cookiewalk.Config, killLabel string, killAfter int64) int {
	t.Helper()
	if cfg.CheckpointDir == "" || cfg.Resume {
		t.Fatal("interruptCrawl wants a fresh checkpointed config")
	}
	study := cookiewalk.New(cfg)
	c := study.Crawler()
	c.ProgressEvery = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	c.Progress = func(p campaign.Progress) {
		delivered++
		if p.Label == killLabel && p.Done >= killAfter {
			cancel()
		}
	}
	if _, err := c.Landscape(ctx, vantage.All(), study.Targets()); err == nil {
		t.Fatalf("crawl was not interrupted (label %q, after %d)", killLabel, killAfter)
	}
	return delivered
}

// resumedReport builds a study that resumes from dir and renders one
// experiment, returning the report and the landscape's replay count.
func resumedReport(t *testing.T, cfg cookiewalk.Config, exp cookiewalk.Experiment) (string, int64) {
	t.Helper()
	cfg.Resume = true
	study := cookiewalk.New(cfg)
	got, err := study.Report(exp)
	if err != nil {
		t.Fatalf("resumed report: %v", err)
	}
	replayed := int64(0)
	for _, res := range study.CachedLandscape().PerVP {
		replayed += res.Stats.Replayed
	}
	return got, replayed
}

// firstDiff fails the test at the first divergent line of two reports.
func firstDiff(t *testing.T, label, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gotLines) && i < len(wantLines); i++ {
		if gotLines[i] != wantLines[i] {
			t.Fatalf("%s: output diverges at line %d:\n got: %q\nwant: %q", label, i+1, gotLines[i], wantLines[i])
		}
	}
	t.Fatalf("%s: output length changed: got %d lines, want %d", label, len(gotLines), len(wantLines))
}

// TestResumeGoldenAfterKill is the tentpole acceptance test: a
// checkpointed crawl killed at an arbitrary point and resumed produces
// the COMPLETE experiment report byte-identical to the checked-in
// golden snapshot of an uninterrupted run. Kill points cover a shard
// boundary, a mid-shard record, the very first deliveries of the first
// campaign, and a later vantage point's campaign (so fully journaled
// VPs replay end to end while later ones crawl fresh).
func TestResumeGoldenAfterKill(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scale-0.02 experiment per kill point")
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	base := cookiewalk.Config{Seed: 42, Scale: 0.02, Reps: 2}
	n := int64(len(cookiewalk.New(base).Targets()))
	const shards = 4
	kills := []struct {
		name  string
		label string
		after int64
	}{
		{"first-deliveries", "landscape US East", 2},
		{"shard-boundary", "landscape US East", n / shards},
		{"mid-shard", "landscape US East", n/shards + n/(2*shards)},
		{"later-vp", "landscape Germany", n / 2},
	}
	for _, k := range kills {
		t.Run(k.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "ckpt")
			cfg := base
			cfg.CheckpointDir = dir
			cfg.Shards = shards
			cfg.Workers = 3
			interruptCrawl(t, cfg, k.label, k.after)

			// Resume under a DIFFERENT worker/shard geometry.
			cfg.Workers = 2
			cfg.Shards = 3
			got, replayed := resumedReport(t, cfg, cookiewalk.ExpAll)
			firstDiff(t, k.name, got, string(want))
			if replayed == 0 {
				t.Fatal("resume replayed nothing — the journal was ignored")
			}
		})
	}
}

// TestResumeDeterminismRandomKill is the CI resume-determinism gate:
// for pseudo-random kill points, vantage points and worker/shard
// geometries derived from a seed, an interrupted-then-resumed study
// reports byte-identically to an uninterrupted one. CI runs it under
// -race once per seed (COOKIEWALK_RESUME_SEED=1|2|3); without the env
// var all three seeds run. On failure the checkpoint directory and the
// got/want reports are copied to COOKIEWALK_RESUME_ARTIFACTS (when
// set) for the workflow to upload.
func TestResumeDeterminismRandomKill(t *testing.T) {
	if testing.Short() {
		t.Skip("crawls the scale-0.01 universe several times")
	}
	seeds := []uint64{1, 2, 3}
	if env := os.Getenv("COOKIEWALK_RESUME_SEED"); env != "" {
		var s uint64
		if _, err := fmt.Sscanf(env, "%d", &s); err != nil {
			t.Fatalf("COOKIEWALK_RESUME_SEED=%q: %v", env, err)
		}
		seeds = []uint64{s}
	}

	base := cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1}
	// One uninterrupted reference serves every seed: the report depends
	// only on the universe config, never on scheduling or kill points.
	reference, err := cookiewalk.New(base).Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatal(err)
	}
	targets := int64(len(cookiewalk.New(base).Targets()))
	vps := cookiewalk.New(base).VantagePoints()

	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := xrand.New(xrand.SubSeed(seed, "resume-determinism"))
			killVP := vps[rng.Intn(len(vps))]
			killAfter := int64(1 + rng.Intn(int(targets)))
			dir := filepath.Join(t.TempDir(), "ckpt")

			cfg := base
			cfg.CheckpointDir = dir
			cfg.Workers = 1 + rng.Intn(4)
			cfg.Shards = 1 + rng.Intn(5)
			interruptCrawl(t, cfg, "landscape "+killVP, killAfter)

			cfg.Workers = 1 + rng.Intn(4)
			cfg.Shards = 1 + rng.Intn(5)
			got, replayed := resumedReport(t, cfg, cookiewalk.ExpAll)
			if got != reference {
				saveResumeArtifacts(t, seed, dir, got, reference)
				firstDiff(t, fmt.Sprintf("seed %d (kill %s@%d)", seed, killVP, killAfter), got, reference)
			}
			if replayed == 0 {
				t.Fatal("resume replayed nothing — the journal was ignored")
			}
			t.Logf("seed %d: killed %s after %d deliveries, replayed %d", seed, killVP, killAfter, replayed)
		})
	}
}

// saveResumeArtifacts copies the checkpoint dir and the diverging
// reports somewhere a CI workflow can upload them.
func saveResumeArtifacts(t *testing.T, seed uint64, checkpointDir, got, want string) {
	t.Helper()
	root := os.Getenv("COOKIEWALK_RESUME_ARTIFACTS")
	if root == "" {
		return
	}
	dst := filepath.Join(root, fmt.Sprintf("seed-%d", seed))
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Logf("artifacts: %v", err)
		return
	}
	if err := os.CopyFS(filepath.Join(dst, "checkpoint"), os.DirFS(checkpointDir)); err != nil {
		t.Logf("artifacts: copy checkpoint: %v", err)
	}
	_ = os.WriteFile(filepath.Join(dst, "got.txt"), []byte(got), 0o644)
	_ = os.WriteFile(filepath.Join(dst, "want.txt"), []byte(want), 0o644)
	t.Logf("resume failure artifacts saved to %s", dst)
}

// TestResumeNonLandscapeExperimentJournal is the PR-5 acceptance test:
// checkpointing now covers EVERY constituent experiment campaign, not
// just the landscape. A checkpointed ExpAll is killed mid-way through
// the fig4 cookiewall campaign — i.e. AFTER the landscape and the fig4
// regular campaign journaled completely — and resumed under a
// DIFFERENT worker/shard geometry with the concurrent scheduler: the
// resumed report must be byte-identical to the golden snapshot, the
// killed campaign must replay its partial journal, and the fully
// journaled campaigns must replay end to end.
func TestResumeNonLandscapeExperimentJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scale-0.02 experiment twice")
	}
	want, err := os.ReadFile("testdata/golden_all.txt")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")
	cfg := cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		CheckpointDir: dir, Workers: 3, Shards: 4,
	}
	study := cookiewalk.New(cfg)
	study.Crawler().ProgressEvery = 1
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	study.Crawler().Progress = func(p campaign.Progress) {
		if p.Label == "fig4 cookiewall" && p.Done >= 5 {
			cancel()
		}
	}
	if _, err := study.ReportContext(ctx, cookiewalk.ExpAll); err == nil {
		t.Fatal("ExpAll was not interrupted")
	}

	// Resume with the concurrent scheduler and a different geometry.
	replayed := map[string]int64{}
	var mu sync.Mutex
	resumeCfg := cookiewalk.Config{
		Seed: 42, Scale: 0.02, Reps: 2,
		CheckpointDir: dir, Resume: true,
		Workers: 2, Shards: 3, ExperimentParallelism: 4,
		Progress: func(p cookiewalk.Progress) {
			mu.Lock()
			if p.Replayed > replayed[p.Label] {
				replayed[p.Label] = p.Replayed
			}
			mu.Unlock()
		},
	}
	got, err := cookiewalk.New(resumeCfg).Report(cookiewalk.ExpAll)
	if err != nil {
		t.Fatalf("resumed report: %v", err)
	}
	firstDiff(t, "resumed ExpAll", got, string(want))
	mu.Lock()
	defer mu.Unlock()
	for _, label := range []string{"landscape US East", "landscape Germany", "fig4 regular", "fig4 cookiewall"} {
		if replayed[label] == 0 {
			t.Errorf("campaign %q replayed nothing — its journal was ignored (replays: %v)", label, replayed)
		}
	}
}

// TestResumeFlagWithoutJournal: Resume over a never-written checkpoint
// dir is simply a fresh (but journaled) crawl — the operator can pass
// -resume unconditionally in a retry loop.
func TestResumeFlagWithoutJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a scale-0.01 crawl")
	}
	dir := filepath.Join(t.TempDir(), "never-written")
	cfg := cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1, CheckpointDir: dir, Resume: true}
	study := cookiewalk.New(cfg)
	got, err := study.Report(cookiewalk.ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1}).Report(cookiewalk.ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	firstDiff(t, "resume-without-journal", got, ref)
	for _, res := range study.CachedLandscape().PerVP {
		if res.Stats.Replayed != 0 {
			t.Fatalf("replayed %d from a nonexistent journal", res.Stats.Replayed)
		}
	}
	// And the crawl journaled while "resuming": a second resume now
	// replays everything.
	got2, replayed := resumedReport(t, cookiewalk.Config{Seed: 42, Scale: 0.01, Reps: 1, CheckpointDir: dir}, cookiewalk.ExpTable1)
	firstDiff(t, "second-resume", got2, ref)
	if replayed == 0 {
		t.Fatal("second resume replayed nothing")
	}
}
