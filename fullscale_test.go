package cookiewalk_test

import (
	"strings"
	"testing"

	"cookiewalk"
)

// TestFullScalePaperNumbers is the end-to-end validation at the
// paper's real size: 45 222 targets, eight vantage points. It checks
// the rate-based results that only hold at scale 1 (the scale-invariant
// structural numbers are covered by the reduced-universe tests).
// Skipped under -short: the campaign takes about a minute.
func TestFullScalePaperNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale campaign (~1 min); run without -short")
	}
	s := fullScaleT(t)

	// §4.1 prevalence: 0.6% overall; Germany 2.9% of reachable top
	// 10k and 8.5% of reachable top 1k; ~1.7% aggregated top-1k.
	prev, err := s.Report(cookiewalk.ExpPrevalence)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"overall: 0.62%", "2.90%", "8.50%"} {
		if !strings.Contains(prev, want) {
			t.Errorf("prevalence missing %q:\n%s", want, prev)
		}
	}

	// §3 random-sample audit at scale 1: about 6 cookiewalls per 1000
	// sampled targets, all detected.
	acc, err := s.Report(cookiewalk.ExpAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(acc, "precision 98.2%") {
		t.Errorf("accuracy:\n%s", acc)
	}
	if !strings.Contains(acc, "recall 100%") {
		t.Errorf("sample recall:\n%s", acc)
	}

	// Table 1, full scale (also covered at reduced scale; asserting
	// here documents that scale does not disturb it).
	tbl, err := s.Report(cookiewalk.ExpTable1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"280", "259", "233", "252"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table 1 missing %q:\n%s", want, tbl)
		}
	}
}

// fullScaleT reuses the benchmark fixture from tests.
func fullScaleT(t *testing.T) *cookiewalk.Study {
	t.Helper()
	fullOnce.Do(func() {
		fullStudy = cookiewalk.New(cookiewalk.Config{Seed: 42, Scale: 1, Reps: 5})
		fullStudy.Landscape()
	})
	return fullStudy
}
